package core

import (
	"os"
	"path/filepath"
	"testing"

	"npss/internal/cmap"
	"npss/internal/engine"
)

// TestBrowserWidgetLoadsMapFile verifies the TESS behavior that the
// compressor module's browser widget selects the performance map: when
// the named file exists, the engine runs on it.
func TestBrowserWidgetLoadsMapFile(t *testing.T) {
	tb := newTestbed(t)
	shortRun(t, tb.exec)

	// Baseline with the built-in generated map.
	tb.exec.Network.SetParam(InstComb, "fuel flow", 1.34)
	base, err := tb.exec.Run(RunOptions{SkipTransient: true})
	if err != nil {
		t.Fatal(err)
	}

	// Write a stage-stacked HPC map (a different speedline shape) and
	// point the browser widget at it.
	dir := t.TempDir()
	mapPath := filepath.Join(dir, "hpc.map")
	m, err := engine.DefaultStageStack().GenerateMap("hpc-file", cmap.DefaultSpeeds(), 15)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmap.WriteCompressor(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := tb.exec.Network.SetParam(InstHPC, "performance map", mapPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := tb.exec.Run(RunOptions{SkipTransient: true})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Engine.HPC.Map.Name != "hpc-file" {
		t.Errorf("engine map = %q, want the file's map", loaded.Engine.HPC.Map.Name)
	}
	// Off-design (fuel 1.34 < design), the different map shape gives a
	// different operating point.
	if loaded.Steady.NH == base.Steady.NH {
		t.Error("loaded map had no effect on the operating point")
	}

	// A corrupt map file is an error, not a silent fallback.
	if err := os.WriteFile(mapPath, []byte("compressor broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.exec.Run(RunOptions{SkipTransient: true}); err == nil {
		t.Error("corrupt map file accepted")
	}

	// A missing file keeps the generated map.
	if err := tb.exec.Network.SetParam(InstHPC, "performance map", filepath.Join(dir, "missing.map")); err != nil {
		t.Fatal(err)
	}
	back, err := tb.exec.Run(RunOptions{SkipTransient: true})
	if err != nil {
		t.Fatal(err)
	}
	if back.Steady.NH != base.Steady.NH {
		t.Error("missing file did not fall back to the generated map")
	}
}

// TestBrowserWidgetLoadsTurbineMap covers the turbine side of the map
// library.
func TestBrowserWidgetLoadsTurbineMap(t *testing.T) {
	tb := newTestbed(t)
	shortRun(t, tb.exec)
	dir := t.TempDir()
	mapPath := filepath.Join(dir, "hpt.map")
	m, err := cmap.GenerateTurbine("hpt-file", cmap.DefaultSpeeds(), cmap.DefaultPRFactors())
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmap.WriteTurbine(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := tb.exec.Network.SetParam(InstHPT, "performance map", mapPath); err != nil {
		t.Fatal(err)
	}
	res, err := tb.exec.Run(RunOptions{SkipTransient: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.HPT.Map.Name != "hpt-file" {
		t.Errorf("turbine map = %q", res.Engine.HPT.Map.Name)
	}
}

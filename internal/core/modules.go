// Package core is the prototype NPSS simulation executive: the
// combination of the AVS-style dataflow framework (package dataflow)
// and the Schooner heterogeneous RPC facility (package schooner) that
// the paper builds and evaluates. TESS engine components appear as
// modules with control-panel widgets; four of them — shaft, duct,
// combustor, and nozzle — are adapted so their computations execute
// remotely: each carries a radio-button widget selecting the machine
// and a type-in widget for the executable pathname, registers a line
// with the Manager from its compute function, and shuts its line down
// from its destroy function.
package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"npss/internal/dataflow"
	"npss/internal/engine"
	"npss/internal/npssproc"
	"npss/internal/schooner"
	"npss/internal/uts"
)

// Local is the machine widget option meaning "compute in-process".
const Local = "local"

// stationType is the dataflow port type for engine station data.
const stationType = "station"

// remoteModule is the common adaptation machinery: the Schooner line
// management the paper describes adding to each converted AVS module.
type remoteModule struct {
	exec     *Executive
	instance string
	path     string // default executable pathname

	mu          sync.Mutex
	line        *schooner.Line
	started     bool
	machine     string
	startedPath string // the pathname the running line was started with
}

// addRemoteWidgets declares the two widgets of the adaptation: the
// radio buttons selecting the remote machine and the type-in holding
// the executable pathname.
func (r *remoteModule) addRemoteWidgets(s *dataflow.Spec) {
	options := append([]string{Local}, r.exec.Machines...)
	s.AddRadio("machine", options...)
	s.AddTypeIn("path", r.path)
}

// ensureStarted registers with the Manager and starts the remote
// process the first time the module computes with a non-local machine
// selection — the dynamic startup protocol of section 4.1.
func (r *remoteModule) ensureStarted(c *dataflow.Context) error {
	if r.instance == "" {
		r.instance = c.Instance()
	}
	machineSel, err := c.TextParam("machine")
	if err != nil {
		return err
	}
	path, err := c.TextParam("path")
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if machineSel == Local {
		// Back to in-process computation: the remote line, if any,
		// shuts down (the module was, in effect, removed from the
		// remote machine).
		if r.started {
			r.line.IQuit()
			r.line, r.started = nil, false
		}
		r.machine = Local
		return nil
	}
	if r.started && r.machine == machineSel && r.startedPath == path {
		return nil
	}
	if r.started {
		// Machine or executable changed: shut down the old line and
		// start anew — re-placement or code substitution through the
		// widgets.
		r.line.IQuit()
		r.line, r.started = nil, false
	}
	ln, err := r.exec.Client.ContactSchx(r.instance)
	if err != nil {
		return fmt.Errorf("core: %s: %w", r.instance, err)
	}
	if err := ln.StartRemote(path, machineSel); err != nil {
		ln.IQuit()
		return fmt.Errorf("core: %s: %w", r.instance, err)
	}
	if err := npssproc.RegisterImports(ln); err != nil {
		ln.IQuit()
		return fmt.Errorf("core: %s: %w", r.instance, err)
	}
	r.line, r.started, r.machine, r.startedPath = ln, true, machineSel, path
	return nil
}

// Line returns the module's Schooner line, or nil when computing
// locally.
func (r *remoteModule) Line() *schooner.Line {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		return nil
	}
	return r.line
}

// Remote reports the selected machine ("local" when in-process).
func (r *remoteModule) Remote() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		return Local
	}
	return r.machine
}

// destroy is sch_i_quit: called from the module's Destroy.
func (r *remoteModule) destroy() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		r.line.IQuit()
		r.line, r.started = nil, false
	}
}

// InletModule models the engine inlet.
type InletModule struct{}

// Spec declares the inlet's ports and widgets.
func (m *InletModule) Spec(s *dataflow.Spec) {
	s.SetName("inlet")
	s.OutPort("out", stationType)
	s.AddDial("recovery", 0.8, 1.0, 0.995)
}

// Compute publishes the inlet's presence; the physics run inside the
// system module's engine evaluation.
func (m *InletModule) Compute(c *dataflow.Context) error {
	rec, err := c.FloatParam("recovery")
	if err != nil {
		return err
	}
	return c.Out("out", rec)
}

// Destroy is a no-op: the inlet has no remote computation.
func (m *InletModule) Destroy() {}

// CompressorModule models the fan or the high-pressure compressor.
type CompressorModule struct {
	Spool string // "low" (fan) or "high" (HPC)
}

// Spec declares the compressor's ports and widgets, including the
// browser widget selecting the performance map file, as in TESS.
func (m *CompressorModule) Spec(s *dataflow.Spec) {
	s.SetName("compressor")
	s.InPort("in", stationType)
	s.OutPort("out", stationType)
	s.AddBrowser("performance map", "/maps/"+m.Spool+"-compressor.map")
	s.AddTypeIn("stator schedule", "")
	s.AddDial("stator angle", 0.7, 1.3, 1.0)
}

// Compute forwards station data; physics run in the system module.
func (m *CompressorModule) Compute(c *dataflow.Context) error {
	return c.Out("out", c.In("in"))
}

// Destroy is a no-op.
func (m *CompressorModule) Destroy() {}

// TurbineModule models the high- or low-pressure turbine.
type TurbineModule struct {
	Spool string
}

// Spec declares ports and the map browser widget.
func (m *TurbineModule) Spec(s *dataflow.Spec) {
	s.SetName("turbine")
	s.InPort("in", stationType)
	s.OutPort("out", stationType)
	s.AddBrowser("performance map", "/maps/"+m.Spool+"-turbine.map")
}

// Compute forwards station data.
func (m *TurbineModule) Compute(c *dataflow.Context) error {
	return c.Out("out", c.In("in"))
}

// Destroy is a no-op.
func (m *TurbineModule) Destroy() {}

// BleedModule models the compressor bleed extraction.
type BleedModule struct{}

// Spec declares ports and the bleed fraction dial.
func (m *BleedModule) Spec(s *dataflow.Spec) {
	s.SetName("bleed")
	s.InPort("in", stationType)
	s.OutPort("out", stationType)
	s.AddDial("bleed fraction", 0, 0.10, 0.03)
}

// Compute forwards station data.
func (m *BleedModule) Compute(c *dataflow.Context) error {
	return c.Out("out", c.In("in"))
}

// Destroy is a no-op.
func (m *BleedModule) Destroy() {}

// MixingVolumeModule models the mixer volume joining core and bypass.
type MixingVolumeModule struct{}

// Spec declares two inputs (core and bypass) and one output.
func (m *MixingVolumeModule) Spec(s *dataflow.Spec) {
	s.SetName("mixing volume")
	s.InPort("core", stationType)
	s.InPort("bypass", stationType)
	s.OutPort("out", stationType)
	s.AddDial("volume", 0.05, 2.0, 0.70)
}

// Compute forwards station data.
func (m *MixingVolumeModule) Compute(c *dataflow.Context) error {
	return c.Out("out", c.In("core"))
}

// Destroy is a no-op.
func (m *MixingVolumeModule) Destroy() {}

// ShaftModule is one of the four adapted modules: its computation (the
// spool acceleration from the torque balance) can execute remotely.
// Its control panel matches the paper's Figure 2 description: widgets
// for moment inertia, spool speed, and spool speed-op.
type ShaftModule struct {
	remoteModule
	Spool string // "low" or "high"

	mu    sync.Mutex
	ecorr float64
	haveE bool
}

// NewShaftModule builds a shaft module bound to an executive.
func NewShaftModule(exec *Executive, instance, spool string) *ShaftModule {
	return &ShaftModule{
		remoteModule: remoteModule{exec: exec, instance: instance, path: npssproc.ShaftPath},
		Spool:        spool,
	}
}

// Spec declares the shaft's ports and widgets.
func (m *ShaftModule) Spec(s *dataflow.Spec) {
	s.SetName("shaft")
	s.InPort("in", stationType)
	s.OutPort("out", stationType)
	s.AddDial("moment inertia", 0.5, 50, map[string]float64{"low": 9.0, "high": 4.5}[m.Spool])
	s.AddDial("spool speed", 1000, 20000, map[string]float64{"low": 10000, "high": 13500}[m.Spool])
	s.AddDial("spool speed-op", 0.5, 1.1, 1.0)
	m.addRemoteWidgets(s)
}

// Compute performs the Schooner registration when a remote machine is
// selected (the code the paper adds to each adapted module's compute
// function) and forwards station data.
func (m *ShaftModule) Compute(c *dataflow.Context) error {
	if err := m.ensureStarted(c); err != nil {
		return err
	}
	m.mu.Lock()
	m.haveE = false // re-placement invalidates the setup constant
	m.mu.Unlock()
	return c.Out("out", c.In("in"))
}

// Destroy shuts down the module's line (sch_i_quit).
func (m *ShaftModule) Destroy() { m.destroy() }

// setup performs the once-per-placement setshaft call (the start of a
// steady-state computation) and returns the setup constant.
func (m *ShaftModule) setup(ln *schooner.Line) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.haveE {
		e, err := npssproc.Setshaft(ln, []float64{0, 0, 0, 0}, 1, []float64{0, 0, 0, 0}, 1)
		if err != nil {
			return 0, err
		}
		m.ecorr, m.haveE = e, true
	}
	return m.ecorr, nil
}

// Hook returns the engine shaft hook routed through this module: the
// remote setshaft/shaft pair when a machine is selected, the local
// computation otherwise.
func (m *ShaftModule) Hook() func(qTur, qCom, inertia, omega float64) (float64, error) {
	return func(qTur, qCom, inertia, omega float64) (float64, error) {
		ln := m.Line()
		if ln == nil {
			return engine.ShaftAccel(qTur, qCom, inertia, omega)
		}
		ecorr, err := m.setup(ln)
		if err != nil {
			return 0, err
		}
		// The paper's shaft signature carries energy (power) terms.
		return npssproc.Shaft(ln,
			[]float64{qCom * omega, 0, 0, 0}, 1,
			[]float64{qTur * omega, 0, 0, 0}, 1,
			ecorr, omega, inertia)
	}
}

// shaftCallArgs marshals one shaft invocation exactly as npssproc.Shaft
// would, for the batched dispatch path.
func shaftCallArgs(qTur, qCom, inertia, omega, ecorr float64) []uts.Value {
	return []uts.Value{
		uts.DoubleArray(qCom*omega, 0, 0, 0), uts.MustInt(1),
		uts.DoubleArray(qTur*omega, 0, 0, 0), uts.MustInt(1),
		uts.DoubleVal(ecorr), uts.DoubleVal(omega), uts.DoubleVal(inertia),
	}
}

// shaftPairHook coalesces the two spools' shaft computations: when
// both modules compute remotely, their shaft calls dispatch together
// through Client.GoBatchHosts, so two calls whose processes share a
// machine (the paper's combined test puts both shafts on the RS/6000)
// cost one wire round trip. The sub-calls carry exactly the messages
// the separate Shaft calls would, so results are bit-identical.
func (x *Executive) shaftPairHook(low, high *ShaftModule) func(qTurL, qComL, inertiaL, omegaL, qTurH, qComH, inertiaH, omegaH float64) (float64, float64, error) {
	return func(qTurL, qComL, inertiaL, omegaL, qTurH, qComH, inertiaH, omegaH float64) (float64, float64, error) {
		lnL, lnH := low.Line(), high.Line()
		if lnL == nil || lnH == nil {
			// At least one side computes in-process: nothing to coalesce.
			dL, err := low.Hook()(qTurL, qComL, inertiaL, omegaL)
			if err != nil {
				return 0, 0, err
			}
			dH, err := high.Hook()(qTurH, qComH, inertiaH, omegaH)
			return dL, dH, err
		}
		eL, err := low.setup(lnL)
		if err != nil {
			return 0, 0, err
		}
		eH, err := high.setup(lnH)
		if err != nil {
			return 0, 0, err
		}
		pends := x.Client.GoBatchHosts([]schooner.CrossCall{
			{Line: lnL, Name: "shaft", Args: shaftCallArgs(qTurL, qComL, inertiaL, omegaL, eL)},
			{Line: lnH, Name: "shaft", Args: shaftCallArgs(qTurH, qComH, inertiaH, omegaH, eH)},
		})
		outL, err := pends[0].Wait()
		if err != nil {
			return 0, 0, err
		}
		outH, err := pends[1].Wait()
		if err != nil {
			return 0, 0, err
		}
		if len(outL) != 1 || len(outH) != 1 {
			return 0, 0, fmt.Errorf("core: batched shaft returned %d/%d results, want 1/1", len(outL), len(outH))
		}
		return outL[0].F, outH[0].F, nil
	}
}

// DuctModule is an adapted module: a pressure-loss duct whose flow
// computation can execute remotely.
type DuctModule struct {
	remoteModule
	Station string // engine duct id: "bypass", "mixer-core", ...

	mu    sync.Mutex
	xkd   float64
	haveK bool
}

// NewDuctModule builds a duct module bound to an executive.
func NewDuctModule(exec *Executive, instance, station string) *DuctModule {
	return &DuctModule{
		remoteModule: remoteModule{exec: exec, instance: instance, path: npssproc.DuctPath},
		Station:      station,
	}
}

// Spec declares the duct's ports and widgets. The augmentor duct
// additionally carries the afterburner fuel controls.
func (m *DuctModule) Spec(s *dataflow.Spec) {
	s.SetName("duct")
	s.InPort("in", stationType)
	s.OutPort("out", stationType)
	if m.Station == "mixer-core" {
		s.AddDial("aug fuel", 0, 6, 0)
		s.AddTypeIn("aug fuel schedule", "")
	}
	m.addRemoteWidgets(s)
}

// Compute performs Schooner registration and forwards station data.
func (m *DuctModule) Compute(c *dataflow.Context) error {
	if err := m.ensureStarted(c); err != nil {
		return err
	}
	m.mu.Lock()
	m.haveK = false
	m.mu.Unlock()
	return c.Out("out", c.In("in"))
}

// Destroy shuts down the module's line.
func (m *DuctModule) Destroy() { m.destroy() }

// Hook returns the duct flow computation routed through this module.
// The design conditions are used by the remote setduct call that sizes
// the orifice constant on first use.
func (m *DuctModule) Hook(des engine.DuctDesign) func(k, pUp, tUp, far, pDown float64) (float64, error) {
	return func(k, pUp, tUp, far, pDown float64) (float64, error) {
		ln := m.Line()
		if ln == nil {
			return engine.DuctFlow(k, pUp, tUp, far, pDown)
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		if !m.haveK {
			xkd, err := npssproc.Setduct(ln, des.W, des.P, des.T, des.FAR, des.DP)
			if err != nil {
				return 0, err
			}
			m.xkd, m.haveK = xkd, true
		}
		return npssproc.Duct(ln, m.xkd, pUp, tUp, far, pDown)
	}
}

// CombustorModule is an adapted module: the combustor computation can
// execute remotely. Its widgets include the fuel flow and the
// transient control schedules TESS provides for the combustor.
type CombustorModule struct {
	remoteModule

	mu    sync.Mutex
	xkc   float64
	haveK bool
}

// NewCombustorModule builds the combustor module.
func NewCombustorModule(exec *Executive, instance string) *CombustorModule {
	return &CombustorModule{
		remoteModule: remoteModule{exec: exec, instance: instance, path: npssproc.CombPath},
	}
}

// Spec declares the combustor's ports and widgets.
func (m *CombustorModule) Spec(s *dataflow.Spec) {
	s.SetName("combustor")
	s.InPort("in", stationType)
	s.OutPort("out", stationType)
	// Zero means "use the design-point fuel flow".
	s.AddDial("fuel flow", 0, 10, 0)
	s.AddTypeIn("fuel schedule", "")
	s.AddTypeIn("stator schedule", "")
	s.AddDial("efficiency", 0.8, 1.0, 0.995)
	m.addRemoteWidgets(s)
}

// Compute performs Schooner registration and forwards station data.
func (m *CombustorModule) Compute(c *dataflow.Context) error {
	if err := m.ensureStarted(c); err != nil {
		return err
	}
	m.mu.Lock()
	m.haveK = false
	m.mu.Unlock()
	return c.Out("out", c.In("in"))
}

// Destroy shuts down the module's line.
func (m *CombustorModule) Destroy() { m.destroy() }

// Hook returns the combustor computation routed through this module.
func (m *CombustorModule) Hook(des engine.CombDesign) func(k, pUp, tUp, farUp, pDown, wf, eta, stator float64) (float64, float64, float64, error) {
	return func(k, pUp, tUp, farUp, pDown, wf, eta, stator float64) (float64, float64, float64, error) {
		ln := m.Line()
		if ln == nil {
			return engine.CombustorCompute(k, pUp, tUp, farUp, pDown, wf, eta, stator)
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		if !m.haveK {
			xkc, err := npssproc.Setcomb(ln, des.W, des.P, des.T, des.DP)
			if err != nil {
				return 0, 0, 0, err
			}
			m.xkc, m.haveK = xkc, true
		}
		return npssproc.Comb(ln, m.xkc, pUp, tUp, farUp, pDown, wf, eta, stator)
	}
}

// NozzleModule is an adapted module: the nozzle computation can
// execute remotely. Its widgets include the area schedule (the
// transient control schedule TESS provides for the nozzle).
type NozzleModule struct {
	remoteModule

	mu    sync.Mutex
	a8    float64
	haveA bool
}

// NewNozzleModule builds the nozzle module.
func NewNozzleModule(exec *Executive, instance string) *NozzleModule {
	return &NozzleModule{
		remoteModule: remoteModule{exec: exec, instance: instance, path: npssproc.NozlPath},
	}
}

// Spec declares the nozzle's ports and widgets.
func (m *NozzleModule) Spec(s *dataflow.Spec) {
	s.SetName("nozzle")
	s.InPort("in", stationType)
	s.AddTypeIn("area schedule", "")
	m.addRemoteWidgets(s)
}

// Compute performs Schooner registration.
func (m *NozzleModule) Compute(c *dataflow.Context) error {
	if err := m.ensureStarted(c); err != nil {
		return err
	}
	m.mu.Lock()
	m.haveA = false
	m.mu.Unlock()
	return nil
}

// Destroy shuts down the module's line.
func (m *NozzleModule) Destroy() { m.destroy() }

// Hook returns the nozzle computation routed through this module. The
// remote setnozl sizes the throat area once from design conditions; a
// mismatch between the engine's area and the remote sizing would
// indicate a marshaling defect, so the remote value is used.
func (m *NozzleModule) Hook(des engine.NozzleDesign) func(a8, pt, tt, far, pamb, stator float64) (float64, float64, error) {
	return func(a8, pt, tt, far, pamb, stator float64) (float64, float64, error) {
		ln := m.Line()
		if ln == nil {
			return engine.NozzleCompute(a8, pt, tt, far, pamb, stator)
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		if !m.haveA {
			a, err := npssproc.Setnozl(ln, des.W, des.P, des.T, des.FAR, des.Pamb)
			if err != nil {
				return 0, 0, err
			}
			m.a8, m.haveA = a, true
		}
		return npssproc.Nozl(ln, m.a8, pt, tt, far, pamb, stator)
	}
}

// SystemModule provides overall control of the simulation run: the
// solution method widgets of the TESS system module (steady state:
// Newton-Raphson or Fourth-order Runge-Kutta; transient: Modified
// Euler, Fourth-order Runge-Kutta, Adams, or Gear), the transient
// length, and the flight condition.
type SystemModule struct{}

// Spec declares the system module's widgets.
func (m *SystemModule) Spec(s *dataflow.Spec) {
	s.SetName("system")
	s.AddChoice("steady method", "Newton-Raphson", "Fourth-order Runge-Kutta")
	s.AddChoice("transient method", "Modified Euler", "Fourth-order Runge-Kutta", "Adams", "Gear")
	s.AddDial("transient seconds", 0.01, 30, 1.0)
	s.AddDial("time step", 1e-4, 0.05, 5e-4)
	s.AddDial("altitude", 0, 20000, 0)
	s.AddDial("mach", 0, 2.2, 0)
}

// Compute is a no-op: the run is driven by Executive.Run.
func (m *SystemModule) Compute(c *dataflow.Context) error { return nil }

// Destroy is a no-op.
func (m *SystemModule) Destroy() {}

// ParseSchedule parses a transient control schedule written in a
// type-in widget as "time:value, time:value, ..." (the widget
// equivalent of TESS's specify-angles-at-certain-times interface). An
// empty string yields nil.
func ParseSchedule(text string) (*engine.Schedule, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	var times, values []float64
	for _, part := range strings.Split(text, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("core: schedule entry %q not of form time:value", part)
		}
		tt, err := strconv.ParseFloat(strings.TrimSpace(kv[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad schedule time %q", kv[0])
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad schedule value %q", kv[1])
		}
		times = append(times, tt)
		values = append(values, v)
	}
	return engine.NewSchedule(times, values)
}

package core

import (
	"fmt"
	"io"
	"os"

	"npss/internal/cmap"
	"npss/internal/dataflow"
	"npss/internal/engine"
	"npss/internal/schooner"
	"npss/internal/solver"
)

// Executive is the prototype NPSS simulation executive: an AVS-style
// network of TESS modules plus a Schooner client. The executive runs
// on one machine (the AVS workstation); each adapted module may place
// its computation on any machine in Machines.
type Executive struct {
	// Client is the Schooner communication library configured with the
	// executive's host and the Manager's location.
	Client *schooner.Client
	// Machines are the remote machine choices offered by the adapted
	// modules' radio-button widgets (the paper's strings between
	// colons naming machines at Lewis and Arizona).
	Machines []string
	// Network is the module graph (the Network Editor document).
	Network *dataflow.Network
	// Config is the engine design configuration used by Run.
	Config engine.F100Config
}

// NewExecutive creates an executive whose modules can reach the given
// machines.
func NewExecutive(client *schooner.Client, machines []string) *Executive {
	return &Executive{
		Client:   client,
		Machines: machines,
		Config:   engine.DefaultF100(),
	}
}

// Instance names of the F100 network, mirroring the paper's Figure 2.
const (
	InstInlet     = "inlet"
	InstFan       = "fan"
	InstBypDuct   = "bypass duct"
	InstHPC       = "compressor"
	InstBleed     = "bleed"
	InstComb      = "combustor"
	InstHPT       = "high pressure turbine"
	InstLPT       = "low pressure turbine"
	InstLowShaft  = "low speed shaft"
	InstHighShaft = "high speed shaft"
	InstAugDuct   = "augmentor duct"
	InstMixVol    = "mixing volume"
	InstNozzle    = "nozzle"
	InstSystem    = "system"
)

// Catalog returns the module palette bound to this executive, for
// loading saved networks.
func (x *Executive) Catalog() *dataflow.Catalog {
	c := dataflow.NewCatalog()
	c.MustRegister("inlet", func() dataflow.Module { return &InletModule{} })
	c.MustRegister("compressor-low", func() dataflow.Module { return &CompressorModule{Spool: "low"} })
	c.MustRegister("compressor-high", func() dataflow.Module { return &CompressorModule{Spool: "high"} })
	c.MustRegister("turbine-low", func() dataflow.Module { return &TurbineModule{Spool: "low"} })
	c.MustRegister("turbine-high", func() dataflow.Module { return &TurbineModule{Spool: "high"} })
	c.MustRegister("bleed", func() dataflow.Module { return &BleedModule{} })
	c.MustRegister("mixing-volume", func() dataflow.Module { return &MixingVolumeModule{} })
	c.MustRegister("shaft-low", func() dataflow.Module { return NewShaftModule(x, "", "low") })
	c.MustRegister("shaft-high", func() dataflow.Module { return NewShaftModule(x, "", "high") })
	c.MustRegister("duct-bypass", func() dataflow.Module { return NewDuctModule(x, "", "bypass") })
	c.MustRegister("duct-augmentor", func() dataflow.Module { return NewDuctModule(x, "", "mixer-core") })
	c.MustRegister("combustor", func() dataflow.Module { return NewCombustorModule(x, "") })
	c.MustRegister("nozzle", func() dataflow.Module { return NewNozzleModule(x, "") })
	c.MustRegister("system", func() dataflow.Module { return &SystemModule{} })
	c.MustRegister("monitor", func() dataflow.Module { return &MonitorModule{} })
	return c
}

// BuildF100 constructs the F100 engine network in the editor: the
// module instances and airflow connections of the paper's Figure 2.
func (x *Executive) BuildF100() error {
	n := dataflow.NewNetwork("f100")
	add := func(instance, typ string, m dataflow.Module) error {
		_, err := n.Add(instance, typ, m)
		return err
	}
	steps := []error{
		add(InstInlet, "inlet", &InletModule{}),
		add(InstFan, "compressor-low", &CompressorModule{Spool: "low"}),
		add(InstBypDuct, "duct-bypass", NewDuctModule(x, InstBypDuct, "bypass")),
		add(InstHPC, "compressor-high", &CompressorModule{Spool: "high"}),
		add(InstBleed, "bleed", &BleedModule{}),
		add(InstComb, "combustor", NewCombustorModule(x, InstComb)),
		add(InstHPT, "turbine-high", &TurbineModule{Spool: "high"}),
		add(InstLPT, "turbine-low", &TurbineModule{Spool: "low"}),
		add(InstHighShaft, "shaft-high", NewShaftModule(x, InstHighShaft, "high")),
		add(InstLowShaft, "shaft-low", NewShaftModule(x, InstLowShaft, "low")),
		add(InstAugDuct, "duct-augmentor", NewDuctModule(x, InstAugDuct, "mixer-core")),
		add(InstMixVol, "mixing-volume", &MixingVolumeModule{}),
		add(InstNozzle, "nozzle", NewNozzleModule(x, InstNozzle)),
		add(InstSystem, "system", &SystemModule{}),
	}
	for _, err := range steps {
		if err != nil {
			return err
		}
	}
	conns := [][4]string{
		{InstInlet, "out", InstFan, "in"},
		{InstFan, "out", InstBypDuct, "in"},
		{InstFan, "out", InstHPC, "in"},
		{InstHPC, "out", InstBleed, "in"},
		{InstBleed, "out", InstComb, "in"},
		{InstComb, "out", InstHPT, "in"},
		{InstHPT, "out", InstLPT, "in"},
		{InstHPT, "out", InstHighShaft, "in"},
		{InstLPT, "out", InstLowShaft, "in"},
		{InstLPT, "out", InstAugDuct, "in"},
		{InstAugDuct, "out", InstMixVol, "core"},
		{InstBypDuct, "out", InstMixVol, "bypass"},
		{InstMixVol, "out", InstNozzle, "in"},
	}
	for _, c := range conns {
		if err := n.Connect(c[0], c[1], c[2], c[3]); err != nil {
			return err
		}
	}
	x.Network = n
	return nil
}

// SetRemote selects the machine and executable path widgets of an
// adapted module, as the user would with the radio buttons and the
// type-in box. An empty path keeps the module's default.
func (x *Executive) SetRemote(instance, machineName, path string) error {
	if err := x.Network.SetParam(instance, "machine", machineName); err != nil {
		return err
	}
	if path != "" {
		return x.Network.SetParam(instance, "path", path)
	}
	return nil
}

// widgets

func (x *Executive) floatWidget(instance, widget string) (float64, error) {
	node, err := x.Network.Node(instance)
	if err != nil {
		return 0, err
	}
	for _, w := range node.Widgets() {
		if w.Name == widget {
			return w.Float()
		}
	}
	return 0, fmt.Errorf("core: %q has no widget %q", instance, widget)
}

func (x *Executive) textWidget(instance, widget string) (string, error) {
	node, err := x.Network.Node(instance)
	if err != nil {
		return "", err
	}
	for _, w := range node.Widgets() {
		if w.Name == widget {
			return w.Text()
		}
	}
	return "", fmt.Errorf("core: %q has no widget %q", instance, widget)
}

// RunOptions controls one simulation run.
type RunOptions struct {
	// SkipTransient stops after the steady-state balance.
	SkipTransient bool
	// Observe, when non-nil, receives every transient step.
	Observe func(t float64, out engine.Outputs)
	// Parallel overlaps the independent remote module computations:
	// the dataflow network executes as a wavefront and the engine's
	// adapted hook calls run concurrently where the airflow graph
	// allows. Results are bit-identical to a sequential run.
	Parallel bool
	// Batch additionally coalesces simultaneous remote calls that
	// target the same machine into single wire messages: the two shaft
	// computations, which become ready at the same instant of the
	// parallel pass, dispatch as one KBatch when their processes share
	// a host. Requires Parallel; results stay bit-identical.
	Batch bool
}

// parallelWorkers bounds the wavefront scheduler's worker pool; the
// F100 network's widest level is smaller than this.
const parallelWorkers = 8

// RunResult reports one simulation run.
type RunResult struct {
	// Steady is the balanced operating point before the transient.
	Steady engine.Outputs
	// SteadyIters is the balance iteration (or march step) count.
	SteadyIters int
	// Final is the state at the end of the transient (zero value when
	// the transient was skipped).
	Final engine.Outputs
	// State is the final engine state vector.
	State []float64
	// Engine is the engine the run executed on, for inspection.
	Engine *engine.Engine
}

// Run executes the simulation as TESS does: the network executes (so
// adapted modules register with the Manager and start their remote
// processes), the engine is assembled from the widget settings, the
// steady-state balance runs with the selected method, and the engine
// transient proceeds up to the number of seconds specified by the
// user.
func (x *Executive) Run(opts RunOptions) (*RunResult, error) {
	if x.Network == nil {
		return nil, fmt.Errorf("core: no network loaded; call BuildF100 or load one")
	}
	workers := 1
	if opts.Parallel {
		workers = parallelWorkers
	}
	if _, err := x.Network.ExecuteParallel(workers); err != nil {
		return nil, err
	}
	eng, err := x.buildEngine()
	if err != nil {
		return nil, err
	}
	if err := x.installHooks(eng, opts.Batch); err != nil {
		return nil, err
	}
	eng.Parallel = opts.Parallel

	steadyMethod := "Newton-Raphson"
	if _, err := x.Network.Node(InstSystem); err == nil {
		if steadyMethod, err = x.textWidget(InstSystem, "steady method"); err != nil {
			return nil, err
		}
	}
	res := &RunResult{Engine: eng}
	state := append([]float64(nil), eng.DesignState...)
	out, iters, err := eng.Balance(state, engine.SteadyOptions{Method: steadyMethod})
	if err != nil {
		return nil, fmt.Errorf("core: steady-state balance: %w", err)
	}
	res.Steady, res.SteadyIters = out, iters

	if opts.SkipTransient {
		res.State = state
		return res, nil
	}

	trMethodName := "Modified Euler"
	if _, err := x.Network.Node(InstSystem); err == nil {
		if trMethodName, err = x.textWidget(InstSystem, "transient method"); err != nil {
			return nil, err
		}
	}
	trMethod, err := solver.MethodByName(trMethodName)
	if err != nil {
		return nil, err
	}
	duration, err := x.floatWidgetOr(InstSystem, "transient seconds", 1.0)
	if err != nil {
		return nil, err
	}
	step, err := x.floatWidgetOr(InstSystem, "time step", 5e-4)
	if err != nil {
		return nil, err
	}
	// Stream transient steps to the caller and to every monitor
	// module in the network.
	monitors := x.monitors()
	observe := opts.Observe
	if len(monitors) > 0 {
		inner := opts.Observe
		observe = func(t float64, out engine.Outputs) {
			for _, m := range monitors {
				m.observe(t, out)
			}
			if inner != nil {
				inner(t, out)
			}
		}
	}
	final, err := eng.Transient(state, engine.TransientOptions{
		Method:   trMethod,
		Duration: duration,
		Step:     step,
		Observe:  observe,
	})
	if err != nil {
		return nil, fmt.Errorf("core: transient: %w", err)
	}
	res.Final = final
	res.State = state
	return res, nil
}

// buildEngine assembles a fresh engine from the design configuration
// and the widget settings.
func (x *Executive) buildEngine() (*engine.Engine, error) {
	cfg := x.Config
	var err error
	if cfg.InertiaL, err = x.floatWidgetOr(InstLowShaft, "moment inertia", cfg.InertiaL); err != nil {
		return nil, err
	}
	if cfg.InertiaH, err = x.floatWidgetOr(InstHighShaft, "moment inertia", cfg.InertiaH); err != nil {
		return nil, err
	}
	if cfg.InletRec, err = x.floatWidgetOr(InstInlet, "recovery", cfg.InletRec); err != nil {
		return nil, err
	}
	if cfg.BurnEff, err = x.floatWidgetOr(InstComb, "efficiency", cfg.BurnEff); err != nil {
		return nil, err
	}
	if cfg.BleedFrac, err = x.floatWidgetOr(InstBleed, "bleed fraction", cfg.BleedFrac); err != nil {
		return nil, err
	}
	if cfg.VolMix, err = x.floatWidgetOr(InstMixVol, "volume", cfg.VolMix); err != nil {
		return nil, err
	}
	eng, err := engine.NewF100(cfg)
	if err != nil {
		return nil, err
	}

	// Flight condition.
	if eng.Alt, err = x.floatWidgetOr(InstSystem, "altitude", 0); err != nil {
		return nil, err
	}
	if eng.Mach, err = x.floatWidgetOr(InstSystem, "mach", 0); err != nil {
		return nil, err
	}

	// Performance maps: each compressor and turbine module carries a
	// browser widget naming its map file (TESS selects performance
	// maps this way). When the file exists it replaces the generated
	// map; a missing file keeps the built-in map, so networks run
	// without a map library installed.
	if err := x.applyMaps(eng); err != nil {
		return nil, err
	}

	// Fuel: dial (0 = design fuel) overridden by the schedule widget.
	fuel, err := x.floatWidgetOr(InstComb, "fuel flow", 0)
	if err != nil {
		return nil, err
	}
	if fuel > 0 {
		eng.Fuel = engine.Constant(fuel)
	}
	if sched, err := x.scheduleWidgetOr(InstComb, "fuel schedule"); err != nil {
		return nil, err
	} else if sched != nil {
		eng.Fuel = sched
	}

	// Transient control schedules: compressor stators, combustor
	// stator, nozzle area.
	if err := x.applyStator(InstFan, &eng.FanStator); err != nil {
		return nil, err
	}
	if err := x.applyStator(InstHPC, &eng.HPCStator); err != nil {
		return nil, err
	}
	if sched, err := x.scheduleWidgetOr(InstComb, "stator schedule"); err != nil {
		return nil, err
	} else if sched != nil {
		eng.CombStator = sched
	}
	if sched, err := x.scheduleWidgetOr(InstNozzle, "area schedule"); err != nil {
		return nil, err
	} else if sched != nil {
		eng.NozzleArea = sched
	}

	// Augmentor fuel: the afterburner controls on the augmentor duct.
	augFuel, err := x.floatWidgetOr(InstAugDuct, "aug fuel", 0)
	if err != nil {
		return nil, err
	}
	if augFuel > 0 {
		eng.AugFuel = engine.Constant(augFuel)
	}
	if sched, err := x.scheduleWidgetOr(InstAugDuct, "aug fuel schedule"); err != nil {
		return nil, err
	} else if sched != nil {
		eng.AugFuel = sched
	}
	return eng, nil
}

// applyMaps loads performance maps from the files named by the
// turbomachinery modules' browser widgets, when present on disk.
func (x *Executive) applyMaps(eng *engine.Engine) error {
	comps := map[string]*engine.Compressor{InstFan: eng.Fan, InstHPC: eng.HPC}
	for inst, comp := range comps {
		if _, err := x.Network.Node(inst); err != nil {
			continue
		}
		path, err := x.textWidget(inst, "performance map")
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			continue // no map library installed: keep the generated map
		}
		m, err := cmap.ReadCompressor(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("core: %s map %q: %w", inst, path, err)
		}
		comp.Map = m
	}
	turbs := map[string]*engine.Turbine{InstHPT: eng.HPT, InstLPT: eng.LPT}
	for inst, turb := range turbs {
		if _, err := x.Network.Node(inst); err != nil {
			continue
		}
		path, err := x.textWidget(inst, "performance map")
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		m, err := cmap.ReadTurbine(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("core: %s map %q: %w", inst, path, err)
		}
		turb.Map = m
	}
	return nil
}

// scheduleWidget parses a schedule type-in; nil when empty.
func (x *Executive) scheduleWidget(instance, widget string) (*engine.Schedule, error) {
	text, err := x.textWidget(instance, widget)
	if err != nil {
		return nil, err
	}
	sched, err := ParseSchedule(text)
	if err != nil {
		return nil, fmt.Errorf("core: %s %q: %w", instance, widget, err)
	}
	return sched, nil
}

// floatWidgetOr reads a numeric widget, returning def when the
// instance is not in the network (a bad widget name on a present
// instance is still an error), so partially built networks run with
// design defaults.
func (x *Executive) floatWidgetOr(instance, widget string, def float64) (float64, error) {
	if _, err := x.Network.Node(instance); err != nil {
		return def, nil
	}
	return x.floatWidget(instance, widget)
}

// scheduleWidgetOr is scheduleWidget tolerating an absent instance.
func (x *Executive) scheduleWidgetOr(instance, widget string) (*engine.Schedule, error) {
	if _, err := x.Network.Node(instance); err != nil {
		return nil, nil
	}
	return x.scheduleWidget(instance, widget)
}

// applyStator installs a compressor's stator angle dial and optional
// schedule; an absent compressor module keeps the nominal schedule.
func (x *Executive) applyStator(instance string, dst **engine.Schedule) error {
	if _, err := x.Network.Node(instance); err != nil {
		return nil
	}
	angle, err := x.floatWidget(instance, "stator angle")
	if err != nil {
		return err
	}
	*dst = engine.Constant(angle)
	if sched, err := x.scheduleWidget(instance, "stator schedule"); err != nil {
		return err
	} else if sched != nil {
		*dst = sched
	}
	return nil
}

// installHooks routes the engine's component computations through the
// network's adapted modules: remote where a machine is selected, local
// otherwise. With batch set, the two shaft modules' calls additionally
// dispatch as one coalesced operation when both compute remotely.
func (x *Executive) installHooks(eng *engine.Engine, batch bool) error {
	hooks := engine.LocalHooks()

	// Shafts by spool.
	shaftHooks := make(map[string]func(qTur, qCom, inertia, omega float64) (float64, error))
	shaftMods := make(map[string]*ShaftModule)
	for _, inst := range []string{InstLowShaft, InstHighShaft} {
		node, err := x.Network.Node(inst)
		if err != nil {
			continue // partial networks run what they have
		}
		sm, ok := node.Module().(*ShaftModule)
		if !ok {
			return fmt.Errorf("core: instance %q is not a shaft module", inst)
		}
		shaftHooks[sm.Spool] = sm.Hook()
		shaftMods[sm.Spool] = sm
	}
	if len(shaftHooks) > 0 {
		local := engine.LocalHooks().Shaft
		hooks.Shaft = func(spool string, qTur, qCom, inertia, omega float64) (float64, error) {
			if h, ok := shaftHooks[spool]; ok {
				return h(qTur, qCom, inertia, omega)
			}
			return local(spool, qTur, qCom, inertia, omega)
		}
	}
	if batch {
		if low, ok := shaftMods["low"]; ok {
			if high, ok := shaftMods["high"]; ok {
				hooks.ShaftPair = x.shaftPairHook(low, high)
			}
		}
	}

	// Ducts by station id.
	ductHooks := make(map[string]func(k, pUp, tUp, far, pDown float64) (float64, error))
	for _, inst := range []string{InstBypDuct, InstAugDuct} {
		node, err := x.Network.Node(inst)
		if err != nil {
			continue
		}
		dm, ok := node.Module().(*DuctModule)
		if !ok {
			return fmt.Errorf("core: instance %q is not a duct module", inst)
		}
		des, ok := eng.DesignDucts[dm.Station]
		if !ok {
			return fmt.Errorf("core: engine has no duct station %q", dm.Station)
		}
		ductHooks[dm.Station] = dm.Hook(des)
	}
	if len(ductHooks) > 0 {
		local := engine.LocalHooks().Duct
		hooks.Duct = func(id string, k, pUp, tUp, far, pDown float64) (float64, error) {
			if h, ok := ductHooks[id]; ok {
				return h(k, pUp, tUp, far, pDown)
			}
			return local(id, k, pUp, tUp, far, pDown)
		}
	}

	// Combustor.
	if node, err := x.Network.Node(InstComb); err == nil {
		cm, ok := node.Module().(*CombustorModule)
		if !ok {
			return fmt.Errorf("core: instance %q is not a combustor module", InstComb)
		}
		hooks.Combustor = cm.Hook(eng.DesignComb)
	}

	// Nozzle.
	if node, err := x.Network.Node(InstNozzle); err == nil {
		nm, ok := node.Module().(*NozzleModule)
		if !ok {
			return fmt.Errorf("core: instance %q is not a nozzle module", InstNozzle)
		}
		hooks.Nozzle = nm.Hook(eng.DesignNozzle)
	}

	eng.Hooks = hooks
	return nil
}

// RemotePlacements reports, for every adapted module instance, the
// machine it is computing on ("local" when in-process), sorted by
// instance name. Useful for the experiment harness's table output.
func (x *Executive) RemotePlacements() map[string]string {
	out := make(map[string]string)
	for _, node := range x.Network.Nodes() {
		switch m := node.Module().(type) {
		case *ShaftModule:
			out[node.Name] = m.Remote()
		case *DuctModule:
			out[node.Name] = m.Remote()
		case *CombustorModule:
			out[node.Name] = m.Remote()
		case *NozzleModule:
			out[node.Name] = m.Remote()
		}
	}
	return out
}

// Destroy clears the network, shutting down every adapted module's
// line (each remote computation terminates, other lines unaffected)
// and releasing the client's cached batch connections.
func (x *Executive) Destroy() {
	if x.Network != nil {
		x.Network.Clear()
	}
	if x.Client != nil {
		x.Client.Close()
	}
}

// SaveNetwork writes the current network in the editor file format.
func (x *Executive) SaveNetwork(w io.Writer) error {
	if x.Network == nil {
		return fmt.Errorf("core: no network to save")
	}
	return dataflow.Save(w, x.Network)
}

// LoadNetwork reads a network file through the executive's module
// catalog and installs it, replacing (and destroying) any current
// network.
func (x *Executive) LoadNetwork(r io.Reader) error {
	n, err := dataflow.Load(r, x.Catalog())
	if err != nil {
		return err
	}
	if x.Network != nil {
		x.Network.Clear()
	}
	x.Network = n
	return nil
}

package core

import (
	"bytes"
	"math"
	"testing"
	"time"

	"npss/internal/engine"
	"npss/internal/machine"
	"npss/internal/netsim"
	"npss/internal/npssproc"
	"npss/internal/schooner"
)

// testbed is a full simulated deployment: the AVS workstation at
// Arizona plus remote machines at both sites, a Manager, and Servers.
type testbed struct {
	net  *netsim.Network
	mgr  *schooner.Manager
	exec *Executive
	reg  *schooner.Registry
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	n := netsim.New()
	hosts := map[string]*machine.Arch{
		"avs-sparc-ua": machine.SPARC,
		"sgi-ua":       machine.SGI,
		"sgi-lerc":     machine.SGI,
		"cray-lerc":    machine.CrayYMP,
		"rs6000-lerc":  machine.RS6000,
	}
	for name, arch := range hosts {
		n.MustAddHost(name, arch)
	}
	tr := schooner.NewSimTransport(n)
	reg := schooner.NewRegistry()
	if err := npssproc.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	mgr, err := schooner.StartManager(tr, "avs-sparc-ua")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)
	for name := range hosts {
		srv, err := schooner.StartServer(tr, name, reg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Stop)
	}
	client := &schooner.Client{Transport: tr, Host: "avs-sparc-ua", ManagerHost: "avs-sparc-ua"}
	exec := NewExecutive(client, []string{"sgi-ua", "sgi-lerc", "cray-lerc", "rs6000-lerc"})
	if err := exec.BuildF100(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Destroy)
	return &testbed{net: n, mgr: mgr, exec: exec, reg: reg}
}

// shortRun configures a quick steady+transient run.
func shortRun(t *testing.T, x *Executive) {
	t.Helper()
	if err := x.Network.SetParam(InstSystem, "transient seconds", 0.2); err != nil {
		t.Fatal(err)
	}
	if err := x.Network.SetParam(InstSystem, "time step", 1e-3); err != nil {
		t.Fatal(err)
	}
}

func TestF100NetworkShape(t *testing.T) {
	tb := newTestbed(t)
	n := tb.exec.Network
	if len(n.Nodes()) != 14 {
		t.Errorf("network has %d modules, want 14", len(n.Nodes()))
	}
	// Figure 2: multiple instances of several module types.
	if got := n.InstancesOf("shaft-low"); len(got) != 1 {
		t.Errorf("shaft-low instances: %v", got)
	}
	shafts := append(n.InstancesOf("shaft-low"), n.InstancesOf("shaft-high")...)
	if len(shafts) != 2 {
		t.Errorf("shaft instances: %v", shafts)
	}
	ducts := append(n.InstancesOf("duct-bypass"), n.InstancesOf("duct-augmentor")...)
	if len(ducts) != 2 {
		t.Errorf("duct instances: %v", ducts)
	}
	// The low speed shaft control panel (the one the paper shows).
	node, err := n.Node(InstLowShaft)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, w := range node.Widgets() {
		names = append(names, w.Name)
	}
	for _, want := range []string{"moment inertia", "spool speed", "spool speed-op", "machine", "path"} {
		found := false
		for _, got := range names {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Errorf("low speed shaft panel missing widget %q (have %v)", want, names)
		}
	}
}

func TestLocalRunMatchesDirectEngine(t *testing.T) {
	tb := newTestbed(t)
	shortRun(t, tb.exec)
	res, err := tb.exec.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Direct engine run with the same configuration.
	eng, err := engine.NewF100(tb.exec.Config)
	if err != nil {
		t.Fatal(err)
	}
	x := append([]float64(nil), eng.DesignState...)
	steady, _, err := eng.Balance(x, engine.SteadyOptions{Method: "newton-raphson"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := eng.Transient(x, engine.TransientOptions{Duration: 0.2, Step: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steady.Thrust != steady.Thrust || res.Steady.NL != steady.NL {
		t.Errorf("executive steady %+v != direct %+v", res.Steady, steady)
	}
	if res.Final.Thrust != final.Thrust || res.Final.NH != final.NH {
		t.Errorf("executive final %+v != direct %+v", res.Final, final)
	}
}

// runPair executes the same simulation locally and with the given
// placements, returning both results. This is the paper's
// verification method: "the results were compared with the same
// computation using the original local-compute-only versions".
func runPair(t *testing.T, placements map[string]string) (*RunResult, *RunResult) {
	t.Helper()
	tb := newTestbed(t)
	shortRun(t, tb.exec)
	// A real throttle transient so the comparison exercises dynamics,
	// not just the balanced point.
	if err := tb.exec.Network.SetParam(InstComb, "fuel schedule", "0:1.48, 0.05:1.33"); err != nil {
		t.Fatal(err)
	}
	local, err := tb.exec.Run(RunOptions{})
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	for inst, mach := range placements {
		if err := tb.exec.SetRemote(inst, mach, ""); err != nil {
			t.Fatal(err)
		}
	}
	remote, err := tb.exec.Run(RunOptions{})
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	got := tb.exec.RemotePlacements()
	for inst, mach := range placements {
		if got[inst] != mach {
			t.Errorf("placement of %s = %q, want %q", inst, got[inst], mach)
		}
	}
	return local, remote
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), 1e-12)
}

func compareRuns(t *testing.T, local, remote *RunResult, tol float64) {
	t.Helper()
	checks := []struct {
		name   string
		lv, rv float64
	}{
		{"steady thrust", local.Steady.Thrust, remote.Steady.Thrust},
		{"steady NL", local.Steady.NL, remote.Steady.NL},
		{"steady NH", local.Steady.NH, remote.Steady.NH},
		{"steady T4", local.Steady.T4, remote.Steady.T4},
		{"final thrust", local.Final.Thrust, remote.Final.Thrust},
		{"final NL", local.Final.NL, remote.Final.NL},
		{"final NH", local.Final.NH, remote.Final.NH},
		{"final T4", local.Final.T4, remote.Final.T4},
	}
	for _, c := range checks {
		if d := relDiff(c.lv, c.rv); d > tol {
			t.Errorf("%s: local %.12g vs remote %.12g (rel %.3g > %.3g)", c.name, c.lv, c.rv, d, tol)
		}
	}
	// Full state vector agreement.
	for i := range local.State {
		if d := relDiff(local.State[i], remote.State[i]); d > tol {
			t.Errorf("state %d: local %.12g vs remote %.12g", i, local.State[i], remote.State[i])
		}
	}
}

func TestRemoteShaftOnIEEE(t *testing.T) {
	// IEEE machines introduce no representation change, but the
	// paper's shaft signature carries power terms (torque times
	// speed), whose multiply-then-divide differs from the local
	// torque-form computation by an ulp per step; the runs agree to
	// solver precision.
	local, remote := runPair(t, map[string]string{InstLowShaft: "rs6000-lerc"})
	compareRuns(t, local, remote, 1e-8)
}

func TestRemoteDuctOnCray(t *testing.T) {
	// The Cray's 48-bit mantissa costs a few ulps per pass; the runs
	// agree within accumulated Cray precision.
	local, remote := runPair(t, map[string]string{InstBypDuct: "cray-lerc"})
	compareRuns(t, local, remote, 1e-5)
}

func TestRemoteCombustorOnSGI(t *testing.T) {
	local, remote := runPair(t, map[string]string{InstComb: "sgi-lerc"})
	compareRuns(t, local, remote, 0)
}

func TestRemoteNozzleOnSGI(t *testing.T) {
	local, remote := runPair(t, map[string]string{InstNozzle: "sgi-ua"})
	compareRuns(t, local, remote, 0)
}

func TestCombinedSixRemoteModules(t *testing.T) {
	// The paper's Table 2: six remote computations at once —
	// combustor on an SGI at Arizona, two ducts on the LeRC Cray,
	// nozzle on an SGI at LeRC, two shafts on the LeRC RS/6000.
	local, remote := runPair(t, map[string]string{
		InstComb:      "sgi-ua",
		InstBypDuct:   "cray-lerc",
		InstAugDuct:   "cray-lerc",
		InstNozzle:    "sgi-lerc",
		InstLowShaft:  "rs6000-lerc",
		InstHighShaft: "rs6000-lerc",
	})
	compareRuns(t, local, remote, 1e-4)
}

func TestDestroyShutsDownLines(t *testing.T) {
	tb := newTestbed(t)
	shortRun(t, tb.exec)
	tb.exec.SetRemote(InstLowShaft, "rs6000-lerc", "")
	tb.exec.SetRemote(InstComb, "sgi-lerc", "")
	if _, err := tb.exec.Run(RunOptions{SkipTransient: true}); err != nil {
		t.Fatal(err)
	}
	if tb.mgr.LineCount() != 2 {
		t.Errorf("LineCount = %d, want 2", tb.mgr.LineCount())
	}
	tb.exec.Destroy()
	deadline := time.Now().Add(2 * time.Second)
	for tb.mgr.LineCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if tb.mgr.LineCount() != 0 {
		t.Errorf("lines remain after Destroy: %v", tb.mgr.Lines())
	}
}

func TestRePlacementMovesComputation(t *testing.T) {
	// Selecting a different machine in the radio widget moves the
	// computation: the old line is shut down and a new one started.
	tb := newTestbed(t)
	shortRun(t, tb.exec)
	tb.exec.SetRemote(InstNozzle, "sgi-lerc", "")
	if _, err := tb.exec.Run(RunOptions{SkipTransient: true}); err != nil {
		t.Fatal(err)
	}
	tb.exec.SetRemote(InstNozzle, "rs6000-lerc", "")
	if _, err := tb.exec.Run(RunOptions{SkipTransient: true}); err != nil {
		t.Fatal(err)
	}
	if got := tb.exec.RemotePlacements()[InstNozzle]; got != "rs6000-lerc" {
		t.Errorf("nozzle on %q after re-placement", got)
	}
	if tb.mgr.LineCount() != 1 {
		t.Errorf("LineCount = %d after re-placement, want 1", tb.mgr.LineCount())
	}
}

func TestWidgetsAffectTheRun(t *testing.T) {
	tb := newTestbed(t)
	shortRun(t, tb.exec)
	base, err := tb.exec.Run(RunOptions{SkipTransient: true})
	if err != nil {
		t.Fatal(err)
	}
	// Throttle back via the fuel flow dial.
	if err := tb.exec.Network.SetParam(InstComb, "fuel flow", base.Steady.Fuel*0.9); err != nil {
		t.Fatal(err)
	}
	lower, err := tb.exec.Run(RunOptions{SkipTransient: true})
	if err != nil {
		t.Fatal(err)
	}
	if lower.Steady.Thrust >= base.Steady.Thrust {
		t.Errorf("thrust did not drop: %g -> %g", base.Steady.Thrust, lower.Steady.Thrust)
	}
	// The moment inertia dial is the paper's example widget; it must
	// flow into the engine.
	if err := tb.exec.Network.SetParam(InstLowShaft, "moment inertia", 18.0); err != nil {
		t.Fatal(err)
	}
	heavy, err := tb.exec.Run(RunOptions{SkipTransient: true})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Engine.InertiaL != 18.0 {
		t.Errorf("inertia widget not applied: %g", heavy.Engine.InertiaL)
	}
}

func TestFuelScheduleWidget(t *testing.T) {
	tb := newTestbed(t)
	shortRun(t, tb.exec)
	// A deceleration schedule through the type-in widget.
	base, err := tb.exec.Run(RunOptions{SkipTransient: true})
	if err != nil {
		t.Fatal(err)
	}
	sched := "0:1.30, 0.05:1.10"
	if err := tb.exec.Network.SetParam(InstComb, "fuel schedule", sched); err != nil {
		t.Fatal(err)
	}
	var sawFuelDrop bool
	res, err := tb.exec.Run(RunOptions{Observe: func(tt float64, out engine.Outputs) {
		if out.Fuel < 1.2 {
			sawFuelDrop = true
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !sawFuelDrop {
		t.Error("fuel schedule did not act during the transient")
	}
	if res.Final.NH >= base.Steady.NH {
		t.Errorf("deceleration did not slow the engine: %g vs %g", res.Final.NH, base.Steady.NH)
	}
}

func TestSolverMethodWidgets(t *testing.T) {
	tb := newTestbed(t)
	shortRun(t, tb.exec)
	// The transient methods menu: all four run and agree loosely.
	// Adams (AB4/AM4 PECE) has the narrowest stability interval of the
	// four and needs the finer step.
	if err := tb.exec.Network.SetParam(InstSystem, "transient seconds", 0.05); err != nil {
		t.Fatal(err)
	}
	if err := tb.exec.Network.SetParam(InstSystem, "time step", 2.5e-4); err != nil {
		t.Fatal(err)
	}
	results := map[string]float64{}
	for _, m := range []string{"Modified Euler", "Fourth-order Runge-Kutta", "Adams", "Gear"} {
		if err := tb.exec.Network.SetParam(InstSystem, "transient method", m); err != nil {
			t.Fatal(err)
		}
		res, err := tb.exec.Run(RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		results[m] = res.Final.Thrust
	}
	ref := results["Fourth-order Runge-Kutta"]
	for m, v := range results {
		if relDiff(v, ref) > 1e-3 {
			t.Errorf("%s thrust %g vs RK4 %g", m, v, ref)
		}
	}
	// Unknown methods are rejected by the widget itself.
	if err := tb.exec.Network.SetParam(InstSystem, "transient method", "leapfrog"); err == nil {
		t.Error("unknown method accepted by widget")
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule(" 0:1.0, 0.5 : 0.9 ,1:0.8")
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != 1.0 || s.At(1) != 0.8 {
		t.Errorf("schedule endpoints wrong")
	}
	if v := s.At(0.25); math.Abs(v-0.95) > 1e-12 {
		t.Errorf("At(0.25) = %g", v)
	}
	if s, err := ParseSchedule(""); err != nil || s != nil {
		t.Error("empty schedule not nil")
	}
	for _, bad := range []string{"1", "a:1", "1:b", "1:2,0:1"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func TestSaveLoadF100Network(t *testing.T) {
	tb := newTestbed(t)
	tb.exec.SetRemote(InstLowShaft, "rs6000-lerc", "")
	var buf bytes.Buffer
	if err := tb.exec.SaveNetwork(&buf); err != nil {
		t.Fatal(err)
	}
	// Reload through the executive's catalog.
	exec2 := NewExecutive(tb.exec.Client, tb.exec.Machines)
	if err := exec2.LoadNetwork(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	n := exec2.Network
	defer exec2.Destroy()
	if len(n.Nodes()) != 14 {
		t.Fatalf("reloaded network has %d modules", len(n.Nodes()))
	}
	// The machine selection survived the round trip.
	node, _ := n.Node(InstLowShaft)
	for _, w := range node.Widgets() {
		if w.Name == "machine" {
			if v, _ := w.Text(); v != "rs6000-lerc" {
				t.Errorf("machine widget = %q", v)
			}
		}
	}
	shortRun(t, exec2)
	if _, err := exec2.Run(RunOptions{SkipTransient: true}); err != nil {
		t.Fatalf("reloaded network does not run: %v", err)
	}
}

package core

import (
	"testing"

	"npss/internal/trace"
)

// table2Placements is the paper's Table 2 combined placement: six
// remote computations, with both shafts sharing the LeRC RS/6000 —
// the pair the batched dispatch coalesces.
func table2Placements() map[string]string {
	return map[string]string{
		InstComb:      "sgi-ua",
		InstBypDuct:   "cray-lerc",
		InstAugDuct:   "cray-lerc",
		InstNozzle:    "sgi-lerc",
		InstLowShaft:  "rs6000-lerc",
		InstHighShaft: "rs6000-lerc",
	}
}

// TestBatchedRunBitIdentical checks the batched Table 2 run produces
// bit-identical simulation results to the parallel run, with fewer
// wire round trips: the two shaft calls per evaluation pass collapse
// into one KBatch to the RS/6000's Server.
func TestBatchedRunBitIdentical(t *testing.T) {
	run := func(opts RunOptions) (*RunResult, int64, int64) {
		tb := newTestbed(t)
		shortRun(t, tb.exec)
		if err := tb.exec.Network.SetParam(InstComb, "fuel schedule", "0:1.48, 0.05:1.33"); err != nil {
			t.Fatal(err)
		}
		for inst, mach := range table2Placements() {
			if err := tb.exec.SetRemote(inst, mach, ""); err != nil {
				t.Fatal(err)
			}
		}
		rpcs0 := trace.Get("schooner.client.rpcs")
		calls0 := trace.Get("schooner.client.calls")
		res, err := tb.exec.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, trace.Get("schooner.client.rpcs") - rpcs0, trace.Get("schooner.client.calls") - calls0
	}

	par, parRPCs, parCalls := run(RunOptions{Parallel: true})
	bat, batRPCs, batCalls := run(RunOptions{Parallel: true, Batch: true})

	// Bit-identical: same calls, same arguments, same arithmetic —
	// batching only changes the envelope they ride in.
	if par.Steady.Thrust != bat.Steady.Thrust || par.Final.Thrust != bat.Final.Thrust {
		t.Errorf("thrust differs: parallel (%.17g, %.17g) vs batched (%.17g, %.17g)",
			par.Steady.Thrust, par.Final.Thrust, bat.Steady.Thrust, bat.Final.Thrust)
	}
	for i := range par.State {
		if par.State[i] != bat.State[i] {
			t.Errorf("state %d differs: parallel %.17g vs batched %.17g", i, par.State[i], bat.State[i])
		}
	}

	// Same procedure-call count, fewer wire messages.
	if batCalls != parCalls {
		t.Errorf("batched run made %d calls, parallel made %d — batching must not change call count", batCalls, parCalls)
	}
	if batRPCs >= parRPCs {
		t.Errorf("batched run used %d wire round trips, parallel used %d — batching saved nothing", batRPCs, parRPCs)
	}
	t.Logf("parallel: %d calls over %d rpcs; batched: %d calls over %d rpcs", parCalls, parRPCs, batCalls, batRPCs)
}

// TestBatchWithLocalShaftFallsBack checks Batch with one shaft local
// degrades gracefully to the per-call path.
func TestBatchWithLocalShaftFallsBack(t *testing.T) {
	tb := newTestbed(t)
	shortRun(t, tb.exec)
	if err := tb.exec.SetRemote(InstLowShaft, "rs6000-lerc", ""); err != nil {
		t.Fatal(err)
	}
	res, err := tb.exec.Run(RunOptions{Parallel: true, Batch: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steady.Thrust <= 0 {
		t.Errorf("steady thrust %g not positive", res.Steady.Thrust)
	}
}

package schooner

// The Manager's control-plane journal: every mutation of the name
// database — line registration, process install, uninstall, line quit
// — plus every acked state checkpoint is appended to a write-ahead
// log (package wal) as one JSON record. Replaying the journal
// rebuilds the exact name database a crashed Manager held, so
// `schooner-manager -recover` (or a warm standby promoting itself)
// can re-adopt the procedure processes that survived the crash.
//
// Records are appended while m.mu is held, so journal order equals
// name-database mutation order and a replayed database can never see
// an install for a line that has not been registered yet.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"npss/internal/trace"
	"npss/internal/uts"
	"npss/internal/wire"
)

// Journal record operations.
const (
	jopLine       = "line"       // a line was registered
	jopQuitLine   = "quit-line"  // a line quit; its processes are gone
	jopInstall    = "install"    // a process was installed into a line
	jopUninstall  = "uninstall"  // a process left a line (move/failover)
	jopCheckpoint = "checkpoint" // one stateful export's state snapshot
)

// journalRecord is one control-plane mutation. Line 0 designates the
// shared database for install/uninstall/checkpoint records.
type journalRecord struct {
	Op     string `json:"op"`
	Line   uint32 `json:"line,omitempty"`
	Module string `json:"module,omitempty"` // line
	Path   string `json:"path,omitempty"`   // install
	Host   string `json:"host,omitempty"`   // install
	Addr   string `json:"addr,omitempty"`   // install, uninstall, checkpoint
	Specs  string `json:"specs,omitempty"`  // install: raw spawn payload (language header + UTS text)
	Proc   string `json:"proc,omitempty"`   // checkpoint: export name
	State  []byte `json:"state,omitempty"`  // checkpoint: marshaled state
}

// journalEntry is one appended record as delivered to a KJournalTail
// subscriber.
type journalEntry struct {
	seq  uint64
	data []byte
}

// journalSub is one live KJournalTail subscription. A subscriber that
// cannot keep up is dropped (its channel closed); it reconnects and
// re-replays, deduplicating by sequence number.
type journalSub struct {
	ch chan journalEntry
}

// journalAppend writes one record to the journal and fans it out to
// tail subscribers. Callers hold m.mu, which is what makes the journal
// a faithful serialization of the name database. A Manager without a
// journal configured is a no-op.
func (m *Manager) journalAppend(rec *journalRecord) error {
	if m.journal == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	seq, err := m.journal.Append(data)
	if err != nil {
		trace.Count("schooner.manager.journal_errors")
		return err
	}
	trace.Count("schooner.manager.journal_records")
	for sub := range m.subs {
		select {
		case sub.ch <- journalEntry{seq: seq, data: data}:
		default:
			delete(m.subs, sub)
			close(sub.ch)
		}
	}
	return nil
}

// recoverFromJournal rebuilds the name database by replaying every
// journal record. Runs before the Manager starts serving, so no
// locking is needed; a decode failure is fatal (the journal is the
// only source of truth at this point).
func (m *Manager) recoverFromJournal() error {
	return m.journal.Replay(func(_ uint64, payload []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("schooner: undecodable journal record: %w", err)
		}
		return m.applyJournal(&rec)
	})
}

// applyJournal applies one replayed record to the in-memory database.
func (m *Manager) applyJournal(rec *journalRecord) error {
	switch rec.Op {
	case jopLine:
		if rec.Line > m.nextLine {
			m.nextLine = rec.Line
		}
		m.lines[rec.Line] = newLine(rec.Line, rec.Module)
	case jopQuitLine:
		ln, ok := m.lines[rec.Line]
		if !ok {
			return nil
		}
		for addr := range ln.processes {
			delete(m.checkpoints, addr)
		}
		delete(m.lines, rec.Line)
	case jopInstall:
		ln := m.journalLine(rec.Line)
		if ln == nil {
			return fmt.Errorf("schooner: journal installs into unknown line %d", rec.Line)
		}
		lang, specText := splitSpawnPayload(rec.Specs)
		specFile, err := uts.Parse(specText)
		if err != nil {
			return fmt.Errorf("schooner: journal install of %s: %w", rec.Path, err)
		}
		proc := &remoteProc{
			path: rec.Path, host: rec.Host, addr: rec.Addr,
			language: lang, exports: specFile.Exports(), specText: rec.Specs,
		}
		for _, spec := range proc.exports {
			ref := &procRef{proc: proc, spec: spec}
			for _, n := range lookupNames(spec, lang) {
				ln.names[n] = ref
			}
		}
		ln.processes[proc.addr] = proc
	case jopUninstall:
		ln := m.journalLine(rec.Line)
		if ln == nil {
			return nil
		}
		proc, ok := ln.processes[rec.Addr]
		if !ok {
			return nil
		}
		for name, ref := range ln.names {
			if ref.proc == proc {
				delete(ln.names, name)
			}
		}
		delete(ln.processes, rec.Addr)
		delete(m.checkpoints, rec.Addr)
	case jopCheckpoint:
		ck := m.checkpoints[rec.Addr]
		if ck == nil {
			ck = make(map[string][]byte)
			m.checkpoints[rec.Addr] = ck
		}
		ck[rec.Proc] = rec.State
	default:
		return fmt.Errorf("schooner: unknown journal op %q", rec.Op)
	}
	return nil
}

// journalLine resolves a record's target database (0 = shared).
func (m *Manager) journalLine(id uint32) *line {
	if id == 0 {
		return m.shared
	}
	return m.lines[id]
}

// dropSub unsubscribes one tail subscriber, closing its channel so the
// streaming goroutine unblocks. Idempotent.
func (m *Manager) dropSub(sub *journalSub) {
	m.mu.Lock()
	if _, ok := m.subs[sub]; ok {
		delete(m.subs, sub)
		close(sub.ch)
	}
	m.mu.Unlock()
}

// serveJournalTail streams the journal over one connection: first a
// snapshot of every record already in the log, then live records as
// they are appended. Entries observed both ways (a record appended
// during the snapshot replay) are deduplicated by sequence number. The
// handler owns the connection until the subscriber drops it or the
// Manager stops.
func (m *Manager) serveJournalTail(conn wire.Conn, req *wire.Message) {
	m.mu.Lock()
	if m.journal == nil || m.stopped {
		m.mu.Unlock()
		resp := errMsg("schooner: manager has no journal to tail")
		resp.Seq = req.Seq
		_ = conn.Send(resp)
		return
	}
	sub := &journalSub{ch: make(chan journalEntry, 256)}
	m.subs[sub] = struct{}{}
	journal := m.journal
	m.mu.Unlock()
	defer m.dropSub(sub)
	// A reader watches the connection: when the subscriber hangs up,
	// the subscription is dropped so the streaming loop below unblocks
	// rather than waiting forever for a next append.
	go func() {
		for {
			if _, err := conn.Recv(); err != nil {
				m.dropSub(sub)
				return
			}
		}
	}()
	trace.Count("schooner.manager.journal_tails")
	var snapMax uint64
	err := journal.Replay(func(seq uint64, payload []byte) error {
		snapMax = seq
		return sendJournalEntry(conn, req.Seq, seq, payload)
	})
	if err != nil {
		return
	}
	for ent := range sub.ch {
		if ent.seq <= snapMax {
			continue
		}
		if sendJournalEntry(conn, req.Seq, ent.seq, ent.data) != nil {
			return
		}
	}
}

// sendJournalEntry frames one journal record: Data is the 8-byte
// big-endian sequence number followed by the record payload.
func sendJournalEntry(conn wire.Conn, reqSeq uint32, seq uint64, payload []byte) error {
	data := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(data, seq)
	copy(data[8:], payload)
	return conn.Send(&wire.Message{Kind: wire.KJournalEntry, Seq: reqSeq, Data: data})
}

package schooner

import (
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"npss/internal/flight"
	"npss/internal/machine"
	"npss/internal/netsim"
	"npss/internal/trace"
	"npss/internal/uts"
	"npss/internal/wal"
	"npss/internal/wire"
)

// durableDeployment is a deployment whose Manager journals to an
// in-memory WAL backend. The backend outlives Manager crashes, so a
// recovered incarnation replays what its predecessor wrote.
type durableDeployment struct {
	*deployment
	backend *wal.MemBackend
}

func newDurableDeployment(t *testing.T, mgrHost string, hosts map[string]*machine.Arch) *durableDeployment {
	t.Helper()
	n := netsim.New()
	for name, arch := range hosts {
		n.MustAddHost(name, arch)
	}
	tr := NewSimTransport(n)
	reg := NewRegistry()
	backend := wal.NewMemBackend()
	log, err := wal.Open(backend, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := StartManagerConfig(tr, mgrHost, ManagerConfig{Journal: log})
	if err != nil {
		t.Fatal(err)
	}
	d := &deployment{
		net: n, tr: tr, reg: reg, mgr: mgr, mgrHost: mgrHost,
		servers: make(map[string]*Server), clientBy: make(map[string]*Client),
	}
	for name := range hosts {
		srv, err := StartServer(tr, name, reg)
		if err != nil {
			t.Fatal(err)
		}
		d.servers[name] = srv
	}
	dd := &durableDeployment{deployment: d, backend: backend}
	t.Cleanup(func() {
		d.mgr.Stop()
		if m2 := dd.mgr; m2 != d.mgr {
			m2.Stop()
		}
		for _, s := range d.servers {
			s.Stop()
		}
	})
	return dd
}

// recoverManager crashes nothing: it opens a fresh log over the shared
// backend (repairing any torn tail) and starts a recovered Manager on
// the same host. The caller must have crashed the previous one.
func (dd *durableDeployment) recoverManager(t *testing.T) *Manager {
	t.Helper()
	log, err := wal.Open(dd.backend, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartManagerConfig(dd.tr, dd.mgrHost, ManagerConfig{Journal: log, Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	dd.mgr = m
	return m
}

// procAddr finds the address of a line's process by path (white-box).
func procAddr(m *Manager, lineID uint32, path string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ln := m.shared
	if lineID != 0 {
		ln = m.lines[lineID]
	}
	if ln == nil {
		return ""
	}
	for _, p := range ln.processes {
		if p.path == path {
			return p.addr
		}
	}
	return ""
}

// TestManagerCrashRecovery is the core durability round trip: the
// Manager crashes with lines, processes, and shared procedures live;
// a -recover restart rebuilds an identical name database from the
// journal, re-adopts the surviving processes, and the client's line
// keeps working through reattach.
func TestManagerCrashRecovery(t *testing.T) {
	dd := newDurableDeployment(t, "avs-sparc", ieeeHosts())
	dd.reg.MustRegister(adderProgram("/npss/adder"))
	dd.reg.MustRegister(counterProgram("/npss/counter"))

	ln, err := dd.client("rs6000").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	if err := ln.StartShared("/npss/counter", "rs6000"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	ln.Import(uts.MustParseProc(`import next prog("n" res integer)`))
	for i := 1; i <= 3; i++ {
		out, err := ln.Call("next")
		if err != nil || out[0].I != int64(i) {
			t.Fatalf("pre-crash next #%d: %v %v", i, out, err)
		}
	}
	preLine := dd.mgr.NameBindings(ln.ID())
	preShared := dd.mgr.NameBindings(0)
	readoptedBefore := trace.Get("schooner.manager.readopted")

	dd.mgr.Crash()
	m2 := dd.recoverManager(t)

	if got := m2.NameBindings(ln.ID()); !reflect.DeepEqual(got, preLine) {
		t.Errorf("recovered line DB = %v, want %v", got, preLine)
	}
	if got := m2.NameBindings(0); !reflect.DeepEqual(got, preShared) {
		t.Errorf("recovered shared DB = %v, want %v", got, preShared)
	}
	if got := trace.Get("schooner.manager.readopted"); got < readoptedBefore+2 {
		t.Errorf("readopted = %d, want at least 2 more than %d", got, readoptedBefore)
	}
	// The line's Manager connection died with the crash; the next
	// manager-bound operation reattaches transparently. The counter
	// process itself never died, so its state is intact.
	ln.FlushCache()
	out, err := ln.Call("next")
	if err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
	if out[0].I != 4 {
		t.Errorf("post-recovery next = %d, want 4 (state preserved across manager crash)", out[0].I)
	}
	if err := ln.IQuit(); err != nil {
		t.Errorf("IQuit after recovery: %v", err)
	}
	if m2.LineCount() != 0 {
		t.Errorf("line survived IQuit at recovered manager")
	}
}

// TestRecoveryFailsOverDeadProcesses: a process that died with its
// host while the Manager was down is failed over during recovery, not
// re-adopted.
func TestRecoveryFailsOverDeadProcesses(t *testing.T) {
	dd := newDurableDeployment(t, "avs-sparc", ieeeHosts())
	dd.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := dd.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	dd.mgr.Crash()
	// The process's host dies while no Manager is watching.
	dd.net.SetHostDown("sgi-lerc", true)
	m2 := dd.recoverManager(t)
	bindings := m2.NameBindings(ln.ID())
	if len(bindings) == 0 {
		t.Fatal("no bindings after recovery")
	}
	for name, host := range bindings {
		if host == "sgi-lerc" {
			t.Errorf("%q still mapped to the dead host after recovery", name)
		}
	}
}

// TestCheckpointRestoreFailover is the stateful-failover acceptance
// path at the package level: a checkpointed counter's host dies, the
// health monitor restores the counter elsewhere from the last acked
// checkpoint, and the value stays monotonic.
func TestCheckpointRestoreFailover(t *testing.T) {
	dd := newDurableDeployment(t, "avs-sparc", ieeeHosts())
	SetRetrySeed(1993)
	dd.reg.MustRegister(counterProgram("/npss/counter"))
	ln, err := dd.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/counter", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import next prog("n" res integer)`))
	for i := 1; i <= 5; i++ {
		if _, err := ln.Call("next"); err != nil {
			t.Fatal(err)
		}
	}
	if snaps, fails := dd.mgr.CheckpointNow(); snaps != 1 || fails != 0 {
		t.Fatalf("CheckpointNow = %d snapshots, %d failures", snaps, fails)
	}
	// Two more bumps after the checkpoint: restore may legally lose
	// these (bounded staleness), but never the checkpointed 5.
	for i := 0; i < 2; i++ {
		if _, err := ln.Call("next"); err != nil {
			t.Fatal(err)
		}
	}

	restoredBefore := trace.Get("schooner.manager.failover_restored_stateful")
	skippedBefore := trace.Get("schooner.manager.failover_skipped_stateful")
	dd.mgr.StartHealth(HealthPolicy{Interval: 5 * time.Millisecond, Threshold: 2, PingTimeout: 50 * time.Millisecond})
	dd.net.SetHostDown("sgi-lerc", true)

	deadline := time.Now().Add(5 * time.Second)
	for trace.Get("schooner.manager.failover_restored_stateful") == restoredBefore {
		if time.Now().After(deadline) {
			t.Fatal("stateful restore never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := trace.Get("schooner.manager.failover_skipped_stateful"); got != skippedBefore {
		t.Errorf("failover_skipped_stateful moved %d -> %d during a restorable failover", skippedBefore, got)
	}
	ln.SetCallPolicy(CallPolicy{Timeout: 100 * time.Millisecond, MaxRetries: 30,
		Backoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond})
	out, err := ln.Call("next")
	if err != nil {
		t.Fatalf("call after restore: %v", err)
	}
	// Checkpoint held 5; the restored counter's next bump must be ≥ 6.
	if out[0].I < 6 {
		t.Errorf("restored counter = %d, want >= 6 (never older than the last acked checkpoint)", out[0].I)
	}
	ledger := dd.mgr.RestoreLedger()
	if len(ledger) != 1 {
		t.Fatalf("restore ledger = %v, want one entry", ledger)
	}
	for addr, n := range ledger {
		if n != 1 {
			t.Errorf("instance %s restored %d times, want exactly once", addr, n)
		}
	}
}

// TestFailoverSkipIsLoud: without a checkpoint the stateful proc is
// still skipped, but now with a flight-recorder event naming it.
func TestFailoverSkipIsLoud(t *testing.T) {
	prev := flight.Swap(nil)
	defer flight.Swap(prev)
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(counterProgram("/npss/counter"))
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/counter", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	skippedBefore := trace.Get("schooner.manager.failover_skipped_stateful")
	d.mgr.StartHealth(HealthPolicy{Interval: 5 * time.Millisecond, Threshold: 2, PingTimeout: 50 * time.Millisecond})
	d.net.SetHostDown("sgi-lerc", true)
	deadline := time.Now().Add(5 * time.Second)
	for trace.Get("schooner.manager.failover_skipped_stateful") == skippedBefore {
		if time.Now().After(deadline) {
			t.Fatal("skip never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	found := false
	for _, e := range flight.Default().Events() {
		if e.Kind == flight.KindFailoverSkip && e.Name == "/npss/counter" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no KindFailoverSkip flight event names the lost procedure")
	}
}

// TestJournalTailStreams: a KJournalTail subscriber receives the full
// snapshot and then live appends, in order.
func TestJournalTailStreams(t *testing.T) {
	dd := newDurableDeployment(t, "avs-sparc", ieeeHosts())
	dd.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := dd.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}

	conn, err := dd.tr.Dial("rs6000", "avs-sparc:"+ManagerPort)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KJournalTail}); err != nil {
		t.Fatal(err)
	}
	// Snapshot: the line registration plus the install.
	var last uint64
	for i := 0; i < 2; i++ {
		m, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind != wire.KJournalEntry || len(m.Data) < 8 {
			t.Fatalf("entry %d = %v", i, m)
		}
		seq := binary.BigEndian.Uint64(m.Data)
		if seq <= last {
			t.Fatalf("sequence not increasing: %d then %d", last, seq)
		}
		last = seq
	}
	// A live mutation streams to the open subscription.
	ln2, err := dd.client("rs6000").ContactSchx("live")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.IQuit()
	m, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != wire.KJournalEntry {
		t.Fatalf("live entry = %v", m)
	}
}

// TestStandbyTakeover: the warm standby mirrors the leader's journal,
// detects its death, promotes itself, and the client line recovers by
// reattaching to the standby host.
func TestStandbyTakeover(t *testing.T) {
	dd := newDurableDeployment(t, "avs-sparc", ieeeHosts())
	SetRetrySeed(1993)
	dd.reg.MustRegister(counterProgram("/npss/counter"))

	standbyLog, err := wal.Open(wal.NewMemBackend(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb := StartStandby(dd.tr, "rs6000", "avs-sparc", standbyLog, StandbyPolicy{
		HeartbeatInterval: 5 * time.Millisecond,
		Threshold:         2,
		PingTimeout:       50 * time.Millisecond,
		Health:            HealthPolicy{Interval: 5 * time.Millisecond, Threshold: 2, PingTimeout: 50 * time.Millisecond},
	})
	t.Cleanup(func() {
		sb.Stop()
		if m := sb.Manager(); m != nil {
			m.Stop()
		}
	})

	c := dd.client("sgi-lerc")
	c.Managers = []string{"rs6000"}
	ln, err := c.ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.StartRemote("/npss/counter", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import next prog("n" res integer)`))
	for i := 1; i <= 4; i++ {
		if _, err := ln.Call("next"); err != nil {
			t.Fatal(err)
		}
	}
	// Let the mirror catch up with the journal before the crash.
	leaderSeq := dd.mgr.JournalSeq()
	deadline := time.Now().Add(5 * time.Second)
	for standbyLog.LastSeq() < leaderSeq {
		if time.Now().After(deadline) {
			t.Fatalf("standby mirror at %d, leader at %d", standbyLog.LastSeq(), leaderSeq)
		}
		time.Sleep(5 * time.Millisecond)
	}

	dd.mgr.Crash()
	for !sb.TookOver() || sb.Manager() == nil {
		if time.Now().After(deadline) {
			t.Fatal("standby never took over")
		}
		time.Sleep(5 * time.Millisecond)
	}
	m2 := sb.Manager()
	if got := m2.NameBindings(ln.ID()); len(got) == 0 {
		t.Fatal("promoted manager has no bindings for the line")
	}
	// A manager-bound operation reattaches the line to the standby; the
	// counter process survived, so its state carries over.
	ln.FlushCache()
	ln.SetCallPolicy(CallPolicy{Timeout: 100 * time.Millisecond, MaxRetries: 30,
		Backoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond})
	out, err := ln.Call("next")
	if err != nil {
		t.Fatalf("call after takeover: %v", err)
	}
	if out[0].I != 5 {
		t.Errorf("counter after takeover = %d, want 5", out[0].I)
	}
	if err := ln.IQuit(); err != nil {
		t.Errorf("IQuit after takeover: %v", err)
	}
}

// TestStateTransferFaultPaths covers the KStateGet/KStatePut error
// surface the restore path depends on: truncated payloads, state
// installs against procedures with no state clause, and dead hosts
// mid-transfer.
func TestStateTransferFaultPaths(t *testing.T) {
	dd := newDurableDeployment(t, "avs-sparc", ieeeHosts())
	dd.reg.MustRegister(adderProgram("/npss/adder"))
	dd.reg.MustRegister(counterProgram("/npss/counter"))
	ln, err := dd.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	if err := ln.StartRemote("/npss/counter", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	counterAddr := procAddr(dd.mgr, ln.ID(), "/npss/counter")
	adderAddr := procAddr(dd.mgr, ln.ID(), "/npss/adder")
	if counterAddr == "" || adderAddr == "" {
		t.Fatal("process addresses not found")
	}

	roundTrip := func(addr string, req *wire.Message) *wire.Message {
		t.Helper()
		conn, err := dd.tr.Dial("avs-sparc", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := conn.Send(req); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Baseline: a real state capture succeeds.
	ok := roundTrip(counterAddr, &wire.Message{Kind: wire.KStateGet, Name: "next"})
	if ok.Kind != wire.KStateOK {
		t.Fatalf("StateGet = %v", ok)
	}
	// Truncated state payload: the install must fail loudly, not
	// install garbage.
	if len(ok.Data) < 2 {
		t.Fatalf("state payload too small to truncate: %d bytes", len(ok.Data))
	}
	resp := roundTrip(counterAddr, &wire.Message{Kind: wire.KStatePut, Name: "next", Data: ok.Data[:len(ok.Data)-1]})
	if resp.Kind != wire.KError {
		t.Errorf("truncated StatePut accepted: %v", resp)
	}
	// State-clause mismatch: installing counter state into a procedure
	// that declares no state.
	resp = roundTrip(adderAddr, &wire.Message{Kind: wire.KStatePut, Name: "add", Data: ok.Data})
	if resp.Kind != wire.KError {
		t.Errorf("StatePut against stateless procedure accepted: %v", resp)
	}
	// StateGet for an unknown procedure.
	resp = roundTrip(counterAddr, &wire.Message{Kind: wire.KStateGet, Name: "nonesuch"})
	if resp.Kind != wire.KError {
		t.Errorf("StateGet for unknown procedure = %v", resp)
	}

	// Dead target host mid-restore: capture and install both fail with
	// errors rather than hanging.
	state, err := dd.mgr.captureState(&remoteProc{
		addr:    counterAddr,
		exports: []*uts.ProcSpec{uts.MustParseProc(`export next prog("n" res integer) state("count" integer)`)},
	})
	if err != nil || len(state) != 1 {
		t.Fatalf("captureState baseline: %v %v", state, err)
	}
	dd.net.SetHostDown("sgi-lerc", true)
	if _, err := dd.mgr.captureState(&remoteProc{
		addr:    counterAddr,
		exports: []*uts.ProcSpec{uts.MustParseProc(`export next prog("n" res integer) state("count" integer)`)},
	}); err == nil {
		t.Error("captureState against a dead host succeeded")
	}
	if err := dd.mgr.installState(&remoteProc{addr: counterAddr}, state); err == nil {
		t.Error("installState against a dead host succeeded")
	}
	// CheckpointNow surfaces the unreachable process as a failure.
	if _, fails := dd.mgr.CheckpointNow(); fails == 0 {
		t.Error("CheckpointNow counted no failure for the dead host")
	}
}

// TestCheckpointLoopRunsOnPackageClock: the periodic sweep ticks and
// journals without any real-time dependency beyond the interval.
func TestCheckpointLoopRunsOnPackageClock(t *testing.T) {
	dd := newDurableDeployment(t, "avs-sparc", ieeeHosts())
	dd.reg.MustRegister(counterProgram("/npss/counter"))
	ln, err := dd.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/counter", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import next prog("n" res integer)`))
	if _, err := ln.Call("next"); err != nil {
		t.Fatal(err)
	}
	before := trace.Get("schooner.manager.checkpoints")
	dd.mgr.StartCheckpoints(5 * time.Millisecond)
	defer dd.mgr.StopCheckpoints()
	deadline := time.Now().Add(5 * time.Second)
	for trace.Get("schooner.manager.checkpoints") < before+2 {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint loop never swept twice")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package schooner

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"npss/internal/trace"
	"npss/internal/uts"
)

// stressPolicy gives the concurrency tests a generous retry budget:
// Move and FlushCache deliberately make bindings stale under the
// callers' feet, and every caller must ride the rebind path through.
func stressPolicy() CallPolicy {
	return CallPolicy{
		Timeout:    250 * time.Millisecond,
		MaxRetries: 30,
		Backoff:    time.Millisecond,
		MaxBackoff: 5 * time.Millisecond,
	}
}

// TestConcurrentCallsOneLine is the race-stress regression for the
// lock restructuring: many goroutines hammer one line with synchronous
// calls, asynchronous calls, and cache flushes, all while the race
// detector watches. Before the fix, l.mu serialized every call across
// its full round trip; now the calls overlap and must still all return
// correct answers.
func TestConcurrentCallsOneLine(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("stress")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	ln.SetCallPolicy(stressPolicy())

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a, b := float64(g), float64(i)
				var out []uts.Value
				var err error
				switch i % 4 {
				case 0, 1:
					out, err = ln.Call("add", uts.DoubleVal(a), uts.DoubleVal(b))
				case 2:
					out, err = ln.Go("add", uts.DoubleVal(a), uts.DoubleVal(b)).Wait()
				case 3:
					ln.FlushCache()
					out, err = ln.Call("add", uts.DoubleVal(a), uts.DoubleVal(b))
				}
				if err != nil {
					errs <- err
					return
				}
				if out[0].F != a+b {
					t.Errorf("goroutine %d call %d = %g, want %g", g, i, out[0].F, a+b)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent call failed: %v", err)
	}
}

// TestConcurrentCallsAcrossMoves keeps a mover relocating the
// procedure between two machines while callers hammer it: every caller
// must recover through the stale-cache rebind protocol, concurrently.
func TestConcurrentCallsAcrossMoves(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("stress")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	ln.SetCallPolicy(stressPolicy())

	stalesBefore := trace.Get("schooner.client.stale")
	var stop atomic.Bool
	var moves atomic.Int64
	var moverWG sync.WaitGroup
	moverWG.Add(1)
	go func() {
		defer moverWG.Done()
		homes := []string{"rs6000", "sgi-lerc"}
		for i := 0; !stop.Load(); i++ {
			if err := ln.Move("add", homes[i%2], false); err != nil {
				t.Errorf("move %d: %v", i, err)
				return
			}
			moves.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Callers run until several moves have landed (pipelined calls are
	// fast enough that a fixed iteration count can finish before the
	// first move), with a floor so every goroutine does real work.
	const goroutines = 6
	const minIters = 20
	const minMoves = 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < minIters || moves.Load() < minMoves; i++ {
				a, b := float64(g), float64(i)
				out, err := ln.Call("add", uts.DoubleVal(a), uts.DoubleVal(b))
				if err != nil {
					t.Errorf("goroutine %d call %d failed across moves: %v", g, i, err)
					return
				}
				if out[0].F != a+b {
					t.Errorf("goroutine %d call %d = %g, want %g", g, i, out[0].F, a+b)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	moverWG.Wait()
	if trace.Get("schooner.client.stale") == stalesBefore {
		t.Error("no stale bindings detected despite concurrent moves")
	}
}

// TestConcurrentLinesOneClient opens several lines through one client
// and drives them from separate goroutines — the paper's "multiple
// independent threads of control" executing truly independently.
func TestConcurrentLinesOneClient(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	c := d.client("avs-sparc")

	const lines = 4
	var wg sync.WaitGroup
	for n := 0; n < lines; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			ln, err := c.ContactSchx("m")
			if err != nil {
				t.Errorf("line %d: %v", n, err)
				return
			}
			defer ln.IQuit()
			if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
				t.Errorf("line %d: %v", n, err)
				return
			}
			ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
			ln.SetCallPolicy(stressPolicy())
			for i := 0; i < 20; i++ {
				out, err := ln.Call("add", uts.DoubleVal(float64(n)), uts.DoubleVal(float64(i)))
				if err != nil {
					t.Errorf("line %d call %d: %v", n, i, err)
					return
				}
				if out[0].F != float64(n+i) {
					t.Errorf("line %d call %d = %g", n, i, out[0].F)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

// TestGoOverlapsCalls pins the point of the async API: two calls to a
// procedure that sleeps on the (simulated, time-scaled) wire overlap
// instead of paying two sequential round trips.
func TestGoOverlapsCalls(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	// Sleep 30% of the simulated per-message delay so wall clock
	// reflects the wire.
	d.net.SetTimeScale(0.3)
	defer d.net.SetTimeScale(0)
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	// Bind once so the measured section is pure calls.
	if _, err := ln.Call("add", uts.DoubleVal(0), uts.DoubleVal(0)); err != nil {
		t.Fatal(err)
	}

	seqStart := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(2)); err != nil {
			t.Fatal(err)
		}
	}
	seq := time.Since(seqStart)

	parStart := time.Now()
	var ps []*Pending
	for i := 0; i < 4; i++ {
		ps = append(ps, ln.Go("add", uts.DoubleVal(1), uts.DoubleVal(2)))
	}
	for _, p := range ps {
		out, err := p.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if out[0].F != 3 {
			t.Fatalf("async result = %g", out[0].F)
		}
	}
	par := time.Since(parStart)

	// Four overlapped calls should take well under four sequential
	// ones; allow slack for scheduler noise.
	if par > seq*3/4 {
		t.Errorf("async calls did not overlap: sequential %v, concurrent %v", seq, par)
	}
}

package schooner

import (
	"fmt"
	"sort"
	"strings"

	"npss/internal/critpath"
	"npss/internal/trace"
	"npss/internal/tseries"
	"npss/internal/wire"
)

// StatusReport renders the Manager's plain-text introspection dump:
// live lines, the health monitor's view of the machines, and the
// global trace counters and latency histograms. It is what a KStatus
// request answers with (`schooner-manager -status` on a deployment,
// or QueryStatus in-process).
func (m *Manager) StatusReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schooner manager on %s\n", m.host)

	b.WriteString("-- lines --\n")
	lines := m.Lines()
	if len(lines) == 0 {
		b.WriteString("(none)\n")
	}
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}

	b.WriteString("-- health --\n")
	hh := m.HostHealth()
	if hh == nil {
		b.WriteString("(monitor off)\n")
	} else {
		hosts := make([]string, 0, len(hh))
		for h := range hh {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			state := "up"
			if !hh[h] {
				state = "down"
			}
			fmt.Fprintf(&b, "%s %s\n", h, state)
		}
	}

	b.WriteString("-- counters --\n")
	b.WriteString(trace.Snapshot())

	if s := tseries.Active(); s != nil {
		b.WriteString("-- series --\n")
		b.WriteString(s.Snapshot().Format())
	}
	return b.String()
}

// QueryStatus asks the Manager on managerHost for its status report
// over the given transport — the in-process equivalent of the
// schooner-manager -status query.
func QueryStatus(t Transport, fromHost, managerHost string) (string, error) {
	conn, err := t.Dial(fromHost, managerHost+":"+ManagerPort)
	if err != nil {
		return "", fmt.Errorf("schooner: cannot reach manager on %s: %w", managerHost, err)
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KStatus}); err != nil {
		return "", err
	}
	resp, err := recvTimeout(conn, rpcTimeout)
	if err != nil {
		return "", err
	}
	if resp.Kind != wire.KStatusOK {
		return "", fmt.Errorf("schooner: status query failed: %s", resp.Err)
	}
	return string(resp.Data), nil
}

// metricsReply builds the KMetricsOK answer: the process's current
// global metric set, JSON-encoded for mergeable transport.
func metricsReply() *wire.Message {
	data, err := trace.Export().EncodeJSON()
	if err != nil {
		return errMsg("schooner: encoding metrics: %v", err)
	}
	return &wire.Message{Kind: wire.KMetricsOK, Data: data}
}

// seriesReply builds the KSeriesOK answer: the process's active
// sampler's windowed series (an empty Series when no sampler is
// installed — still a valid, mergeable reply).
func seriesReply() *wire.Message {
	data, err := tseries.ActiveSnapshot().EncodeJSON()
	if err != nil {
		return errMsg("schooner: encoding series: %v", err)
	}
	return &wire.Message{Kind: wire.KSeriesOK, Data: data}
}

// profileReply builds the KProfileOK answer: the critical-path
// attribution of the process's live span recorder (an empty profile
// when tracing is off — still a valid reply).
func profileReply() *wire.Message {
	return &wire.Message{Kind: wire.KProfileOK, Data: critpath.ActiveSnapshot().EncodeJSON()}
}

// QueryProfile asks the component listening on addr (a Manager's
// "host:port" or bare Manager host) for its critical-path attribution
// profile.
func QueryProfile(t Transport, fromHost, addr string) (*critpath.Profile, error) {
	if !strings.Contains(addr, ":") {
		addr += ":" + ManagerPort
	}
	conn, err := t.Dial(fromHost, addr)
	if err != nil {
		return nil, fmt.Errorf("schooner: cannot reach %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KProfile}); err != nil {
		return nil, err
	}
	resp, err := recvTimeout(conn, rpcTimeout)
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KProfileOK {
		return nil, fmt.Errorf("schooner: profile query failed: %s", resp.Err)
	}
	return critpath.DecodeProfile(resp.Data)
}

// QuerySeries asks the component listening on addr (a Manager's
// "host:port" or bare Manager host) for its windowed time-series
// snapshot. Series are mergeable: callers roll several components'
// series into the cluster-wide view with Series.Merge.
func QuerySeries(t Transport, fromHost, addr string) (tseries.Series, error) {
	if !strings.Contains(addr, ":") {
		addr += ":" + ManagerPort
	}
	conn, err := t.Dial(fromHost, addr)
	if err != nil {
		return tseries.Series{}, fmt.Errorf("schooner: cannot reach %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KSeries}); err != nil {
		return tseries.Series{}, err
	}
	resp, err := recvTimeout(conn, rpcTimeout)
	if err != nil {
		return tseries.Series{}, err
	}
	if resp.Kind != wire.KSeriesOK {
		return tseries.Series{}, fmt.Errorf("schooner: series query failed: %s", resp.Err)
	}
	return tseries.DecodeSeries(resp.Data)
}

// QueryMetrics asks the component listening on addr (a Manager's
// "host:port" or bare Manager host) for its live metric snapshot.
// The snapshot is mergeable: callers roll several components'
// snapshots into a cluster-wide view with MetricsSnapshot.Merge.
func QueryMetrics(t Transport, fromHost, addr string) (trace.MetricsSnapshot, error) {
	if !strings.Contains(addr, ":") {
		addr += ":" + ManagerPort
	}
	conn, err := t.Dial(fromHost, addr)
	if err != nil {
		return trace.MetricsSnapshot{}, fmt.Errorf("schooner: cannot reach %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KMetrics}); err != nil {
		return trace.MetricsSnapshot{}, err
	}
	resp, err := recvTimeout(conn, rpcTimeout)
	if err != nil {
		return trace.MetricsSnapshot{}, err
	}
	if resp.Kind != wire.KMetricsOK {
		return trace.MetricsSnapshot{}, fmt.Errorf("schooner: metrics query failed: %s", resp.Err)
	}
	return trace.DecodeMetrics(resp.Data)
}

// QueryFlight asks the component listening on addr (a Manager's
// "host:port" or bare Manager host) for its flight-recorder dump.
func QueryFlight(t Transport, fromHost, addr string) (string, error) {
	if !strings.Contains(addr, ":") {
		addr += ":" + ManagerPort
	}
	conn, err := t.Dial(fromHost, addr)
	if err != nil {
		return "", fmt.Errorf("schooner: cannot reach %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KFlightDump}); err != nil {
		return "", err
	}
	resp, err := recvTimeout(conn, rpcTimeout)
	if err != nil {
		return "", err
	}
	if resp.Kind != wire.KFlightDumpOK {
		return "", fmt.Errorf("schooner: flight query failed: %s", resp.Err)
	}
	return string(resp.Data), nil
}

package schooner

import (
	"sync"
	"testing"

	"npss/internal/trace"
	"npss/internal/uts"
	"npss/internal/wire"
)

// TestGoBatchSameProcess coalesces a wavefront of calls to one
// procedure process into a single wire round trip and checks every
// result.
func TestGoBatchSameProcess(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("batcher")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	ln.Import(uts.MustParseProc(`import scale prog("xs" var array[3] of double, "k" val double)`))

	// Warm the binding so the batch itself is a single round trip.
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(2)); err != nil {
		t.Fatal(err)
	}

	batchesBefore := trace.Get("schooner.client.batches")
	rpcsBefore := trace.Get("schooner.client.rpcs")

	const n = 8
	calls := make([]BatchCall, n)
	for i := range calls {
		calls[i] = BatchCall{Name: "add", Args: []uts.Value{uts.DoubleVal(float64(i)), uts.DoubleVal(100)}}
	}
	pends := ln.GoBatch(calls)
	for i, p := range pends {
		out, err := p.Wait()
		if err != nil {
			t.Fatalf("batch call %d: %v", i, err)
		}
		if want := float64(i) + 100; out[0].F != want {
			t.Errorf("batch call %d = %g, want %g", i, out[0].F, want)
		}
	}
	if got := trace.Get("schooner.client.batches") - batchesBefore; got != 1 {
		t.Errorf("batches counter advanced by %d, want 1", got)
	}
	if got := trace.Get("schooner.client.rpcs") - rpcsBefore; got != 1 {
		t.Errorf("%d wire round trips for a coalesced batch of %d, want 1", got, n)
	}

	// Mixed procedures in the same process still coalesce.
	mixed := ln.GoBatch([]BatchCall{
		{Name: "add", Args: []uts.Value{uts.DoubleVal(2), uts.DoubleVal(3)}},
		{Name: "scale", Args: []uts.Value{uts.DoubleArray(1, 2, 3), uts.DoubleVal(2)}},
	})
	out0, err := mixed[0].Wait()
	if err != nil || out0[0].F != 5 {
		t.Fatalf("mixed add = %v, %v", out0, err)
	}
	out1, err := mixed[1].Wait()
	if err != nil {
		t.Fatalf("mixed scale: %v", err)
	}
	if xs, _ := out1[0].Floats(); xs[1] != 4 {
		t.Errorf("mixed scale = %v, want [2 4 6]", xs)
	}
}

// TestGoBatchUnknownProcedure checks a bad member fails alone without
// sinking the rest of the batch.
func TestGoBatchUnknownProcedure(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("batcher")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))

	pends := ln.GoBatch([]BatchCall{
		{Name: "add", Args: []uts.Value{uts.DoubleVal(1), uts.DoubleVal(1)}},
		{Name: "nosuch", Args: nil},
		{Name: "add", Args: []uts.Value{uts.DoubleVal(2), uts.DoubleVal(2)}},
	})
	if out, err := pends[0].Wait(); err != nil || out[0].F != 2 {
		t.Errorf("member 0 = %v, %v", out, err)
	}
	if _, err := pends[1].Wait(); err == nil {
		t.Error("unknown procedure succeeded")
	}
	if out, err := pends[2].Wait(); err != nil || out[0].F != 4 {
		t.Errorf("member 2 = %v, %v", out, err)
	}
}

// TestGoBatchHostsAcrossProcesses places two programs in separate
// processes on one machine and checks a cross-line batch reaches both
// through the machine's Server in one round trip.
func TestGoBatchHostsAcrossProcesses(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	d.reg.MustRegister(shaftProgram("/npss/shaft"))
	c := d.client("avs-sparc")

	lnA, err := c.ContactSchx("modA")
	if err != nil {
		t.Fatal(err)
	}
	defer lnA.IQuit()
	if err := lnA.StartRemote("/npss/adder", "rs6000"); err != nil {
		t.Fatal(err)
	}
	lnA.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))

	lnB, err := c.ContactSchx("modB")
	if err != nil {
		t.Fatal(err)
	}
	defer lnB.IQuit()
	if err := lnB.StartRemote("/npss/shaft", "rs6000"); err != nil {
		t.Fatal(err)
	}
	lnB.Import(uts.MustParseProc(`import shaft prog(
		"ecom" val array[4] of double, "incom" val integer,
		"etur" val array[4] of double, "intur" val integer,
		"ecorr" val double, "xspool" val double, "xmyi" val double,
		"dxspl" res double)`))

	// Warm both bindings.
	if _, err := lnA.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
		t.Fatal(err)
	}
	shaftArgs := []uts.Value{
		uts.DoubleArray(1, 1, 1, 1), uts.MustInt(1),
		uts.DoubleArray(2, 2, 2, 2), uts.MustInt(1),
		uts.DoubleVal(1), uts.DoubleVal(2), uts.DoubleVal(3),
	}
	want, err := lnB.Call("shaft", shaftArgs...)
	if err != nil {
		t.Fatal(err)
	}

	hostBatchesBefore := trace.Get("schooner.client.host_batches")
	rpcsBefore := trace.Get("schooner.client.rpcs")
	pends := c.GoBatchHosts([]CrossCall{
		{Line: lnA, Name: "add", Args: []uts.Value{uts.DoubleVal(3), uts.DoubleVal(4)}},
		{Line: lnB, Name: "shaft", Args: shaftArgs},
	})
	outA, err := pends[0].Wait()
	if err != nil || outA[0].F != 7 {
		t.Fatalf("cross-batch add = %v, %v", outA, err)
	}
	outB, err := pends[1].Wait()
	if err != nil {
		t.Fatalf("cross-batch shaft: %v", err)
	}
	if outB[0].F != want[0].F {
		t.Errorf("cross-batch shaft = %g, want %g (bit-identical)", outB[0].F, want[0].F)
	}
	if got := trace.Get("schooner.client.host_batches") - hostBatchesBefore; got != 1 {
		t.Errorf("host_batches advanced by %d, want 1", got)
	}
	if got := trace.Get("schooner.client.rpcs") - rpcsBefore; got != 1 {
		t.Errorf("%d wire round trips for a host batch of 2, want 1", got)
	}
}

// TestGoBatchFallbackAfterMove invalidates the cached binding under a
// batch by moving the procedure first: the batch envelope lands on the
// dead process and every member must recover through the per-call
// retry machinery.
func TestGoBatchFallbackAfterMove(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("batcher")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
		t.Fatal(err)
	}
	// The cached binding now points at sgi-lerc; move out from under it.
	if err := ln.Move("add", "rs6000", false); err != nil {
		t.Fatal(err)
	}
	pends := ln.GoBatch([]BatchCall{
		{Name: "add", Args: []uts.Value{uts.DoubleVal(1), uts.DoubleVal(2)}},
		{Name: "add", Args: []uts.Value{uts.DoubleVal(3), uts.DoubleVal(4)}},
	})
	for i, p := range pends {
		out, err := p.Wait()
		if err != nil {
			t.Fatalf("batch member %d after move: %v", i, err)
		}
		if want := []float64{3, 7}[i]; out[0].F != want {
			t.Errorf("batch member %d = %g, want %g", i, out[0].F, want)
		}
	}
}

// TestPipelinedConcurrentCalls hammers one procedure from many
// goroutines: with pipelining (the default) they all share the
// binding's one connection, and the idle lease pool stays empty.
func TestPipelinedConcurrentCalls(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))

	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a, b := float64(g), float64(i)
				out, err := ln.Call("add", uts.DoubleVal(a), uts.DoubleVal(b))
				if err != nil {
					t.Errorf("goroutine %d call %d: %v", g, i, err)
					return
				}
				if out[0].F != a+b {
					t.Errorf("goroutine %d call %d = %g, want %g", g, i, out[0].F, a+b)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	ln.mu.Lock()
	b := ln.bindings["add"]
	ln.mu.Unlock()
	if b == nil {
		t.Fatal("no binding cached after calls")
	}
	b.mu.Lock()
	idle, pipe := len(b.idle), b.pipe
	b.mu.Unlock()
	if idle != 0 {
		t.Errorf("pipelined binding pooled %d leased conns, want 0", idle)
	}
	if pipe == nil {
		t.Error("pipelined binding has no shared connection")
	}
}

// TestPipelinedOutOfOrderReplies drives the demultiplexed connection
// against a hand-rolled peer that reads a window of requests and
// answers them in reverse order: each waiter must still receive
// exactly the reply bearing its sequence number.
func TestPipelinedOutOfOrderReplies(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	lis, err := d.tr.Listen("sgi-lerc", "")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	const window = 4
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			reqs := make([]*wire.Message, 0, window)
			for len(reqs) < window {
				m, err := conn.Recv()
				if err != nil {
					return
				}
				reqs = append(reqs, m)
			}
			for i := len(reqs) - 1; i >= 0; i-- {
				// Echo the request payload back under its own seq.
				if err := conn.Send(&wire.Message{Kind: wire.KReply, Seq: reqs[i].Seq, Data: reqs[i].Data}); err != nil {
					return
				}
			}
		}
	}()

	raw, err := d.tr.Dial("avs-sparc", lis.Addr())
	if err != nil {
		t.Fatal(err)
	}
	g := newDemuxConn(raw)
	defer g.Close()

	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		results := make([][]byte, window)
		errs := make([]error, window)
		for i := 0; i < window; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := &wire.Message{Kind: wire.KCall, Seq: uint32(round*window + i + 1), Data: []byte{byte(i)}}
				resp, err := g.exchange(req, 0)
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = resp.Data
			}(i)
		}
		wg.Wait()
		for i := 0; i < window; i++ {
			if errs[i] != nil {
				t.Fatalf("round %d waiter %d: %v", round, i, errs[i])
			}
			if len(results[i]) != 1 || results[i][0] != byte(i) {
				t.Errorf("round %d waiter %d got payload %v, want [%d]", round, i, results[i], i)
			}
		}
	}
}

// TestIdlePoolBounded bursts 64 concurrent leased-mode calls through
// one binding and checks the pool settles at the cap, with the
// overflow closed and counted.
func TestIdlePoolBounded(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	c := d.client("avs-sparc")
	ln, err := c.ContactSchx("burst")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	ln.SetCallPolicy(CallPolicy{NoPipeline: true})

	evictionsBefore := trace.Get("schooner.client.pool_evictions")
	const burst = 64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := ln.Call("add", uts.DoubleVal(float64(i)), uts.DoubleVal(1)); err != nil {
				t.Errorf("burst call %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	ln.mu.Lock()
	b := ln.bindings["add"]
	ln.mu.Unlock()
	b.mu.Lock()
	idle := len(b.idle)
	b.mu.Unlock()
	if idle > maxIdleConns {
		t.Errorf("idle pool holds %d conns after a %d-way burst, cap is %d", idle, burst, maxIdleConns)
	}
	if trace.Get("schooner.client.pool_evictions") == evictionsBefore && idle == maxIdleConns {
		// A fully sequentialized burst can release within the cap every
		// time; only flag when the pool filled and nothing was evicted
		// despite more concurrent conns than the cap.
		t.Logf("no evictions recorded (burst may have been sequential)")
	}
}

package schooner

import (
	"reflect"
	"testing"
	"time"

	"npss/internal/machine"
	"npss/internal/netsim"
	"npss/internal/trace"
	"npss/internal/uts"
	"npss/internal/vclock"
)

// newVirtualDeployment builds a deployment whose network and Schooner
// runtime keep time on a virtual clock. The clock is installed before
// anything starts, so no component ever arms a wall-clock timer.
func newVirtualDeployment(t *testing.T, mgrHost string, hosts map[string]*machine.Arch) (*deployment, *vclock.Virtual) {
	t.Helper()
	v := vclock.NewVirtual()
	prev := SwapClock(v)
	n := netsim.New()
	n.SetClock(v)
	n.SetTimeScale(1.0)
	for name, arch := range hosts {
		n.MustAddHost(name, arch)
	}
	tr := NewSimTransport(n)
	reg := NewRegistry()
	mgr, err := StartManager(tr, mgrHost)
	if err != nil {
		v.Stop()
		SwapClock(prev)
		t.Fatal(err)
	}
	d := &deployment{
		net: n, tr: tr, reg: reg, mgr: mgr, mgrHost: mgrHost,
		servers: make(map[string]*Server), clientBy: make(map[string]*Client),
	}
	for name := range hosts {
		srv, err := StartServer(tr, name, reg)
		if err != nil {
			t.Fatal(err)
		}
		d.servers[name] = srv
	}
	t.Cleanup(func() {
		// Dependency order: runtime first (the prober and any pending
		// sleeps are on the virtual clock, which must still be running),
		// then the clock, then the wall clock comes back.
		d.mgr.Stop()
		for _, s := range d.servers {
			s.Stop()
		}
		v.Stop()
		time.Sleep(2 * time.Millisecond)
		SwapClock(prev)
	})
	return d, v
}

// napProgram exports nap, which sleeps on the package clock before
// answering — virtual seconds when a virtual clock is installed.
func napProgram(path string, d time.Duration) *Program {
	return &Program{
		Path:     path,
		Language: LangC,
		Build: func() (*Instance, error) {
			p := &BoundProc{
				Spec: uts.MustParseProc(`export nap prog("x" val double, "y" res double)`),
				Fn: func(in []uts.Value) ([]uts.Value, error) {
					clk().Sleep(d)
					return []uts.Value{uts.DoubleVal(in[0].F * 2)}, nil
				},
			}
			return NewInstance(p)
		},
	}
}

// TestVirtualCallDeadlineExpiry: a 30-second call deadline expires in
// virtual time with no real wait. The procedure stalls two virtual
// minutes against a 30-second timeout; the failure must arrive in far
// less real time than the deadline itself, which is only possible if
// the deadline timer runs on the virtual clock.
func TestVirtualCallDeadlineExpiry(t *testing.T) {
	d, v := newVirtualDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(napProgram("/npss/nap", 2*time.Minute))
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/nap", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import nap prog("x" val double, "y" res double)`))
	ln.SetCallPolicy(CallPolicy{
		Timeout:    30 * time.Second,
		MaxRetries: -1, // single attempt: the timeout itself is under test
		Backoff:    time.Millisecond,
		MaxBackoff: time.Millisecond,
	})

	timeoutsBefore := trace.Get("schooner.client.timeouts")
	virtualBefore := v.Elapsed()
	realStart := time.Now()
	_, err = ln.Call("nap", uts.DoubleVal(1))
	realElapsed := time.Since(realStart)
	virtualElapsed := v.Elapsed() - virtualBefore

	if err == nil {
		t.Fatal("call survived a procedure stalled past its deadline")
	}
	if trace.Get("schooner.client.timeouts") == timeoutsBefore {
		t.Error("deadline expiry not counted as a timeout")
	}
	if virtualElapsed < 30*time.Second {
		t.Errorf("virtual clock advanced only %v, deadline should consume 30s", virtualElapsed)
	}
	if realElapsed >= 10*time.Second {
		t.Errorf("30s virtual deadline took %v of real time — something slept on the wall clock", realElapsed)
	}
}

// TestVirtualHealthFailover drives the Manager's health prober purely
// by virtual-clock advancement: sweep intervals are whole virtual
// seconds, so the machine could only be declared dead (and its
// stateless process failed over) if the prober's ticker runs on the
// virtual clock.
func TestVirtualHealthFailover(t *testing.T) {
	d, v := newVirtualDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
		t.Fatal(err)
	}

	d.mgr.StartHealth(HealthPolicy{
		Interval:    2 * time.Second,
		Threshold:   2,
		PingTimeout: time.Second,
	})
	failoversBefore := trace.Get("schooner.manager.failovers")
	realStart := time.Now()
	virtualBefore := v.Elapsed()
	d.net.SetHostDown("sgi-lerc", true)

	// Wait for the prober's verdict by sleeping virtual half-seconds.
	declaredDead := false
	for i := 0; i < 240; i++ {
		if alive, probed := d.mgr.HostHealth()["sgi-lerc"]; probed && !alive {
			declaredDead = true
			break
		}
		v.Sleep(500 * time.Millisecond)
	}
	if !declaredDead {
		t.Fatal("sgi-lerc never declared dead under the virtual clock")
	}

	ln.SetCallPolicy(CallPolicy{
		Timeout:    5 * time.Second,
		MaxRetries: 10,
		Backoff:    100 * time.Millisecond,
		MaxBackoff: 2 * time.Second,
	})
	out, err := ln.Call("add", uts.DoubleVal(20), uts.DoubleVal(22))
	if err != nil {
		t.Fatalf("call did not recover through virtual-time failover: %v", err)
	}
	if out[0].F != 42 {
		t.Fatalf("recovered call = %g", out[0].F)
	}
	if trace.Get("schooner.manager.failovers") == failoversBefore {
		t.Error("no failover counted")
	}
	realElapsed := time.Since(realStart)
	virtualElapsed := v.Elapsed() - virtualBefore
	if virtualElapsed < 4*time.Second {
		t.Errorf("virtual clock advanced only %v; two 2s sweeps were required", virtualElapsed)
	}
	if realElapsed >= virtualElapsed {
		t.Errorf("real %v >= virtual %v: prober timing leaked onto the wall clock", realElapsed, virtualElapsed)
	}
}

// TestVirtualPendingWait: an asynchronous call whose procedure sleeps
// five virtual seconds completes under Pending.Wait without the caller
// spending five real seconds.
func TestVirtualPendingWait(t *testing.T) {
	d, v := newVirtualDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(napProgram("/npss/nap", 5*time.Second))
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/nap", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import nap prog("x" val double, "y" res double)`))
	ln.SetCallPolicy(CallPolicy{
		Timeout:    time.Minute,
		MaxRetries: -1,
		Backoff:    time.Millisecond,
		MaxBackoff: time.Millisecond,
	})

	virtualBefore := v.Elapsed()
	realStart := time.Now()
	p := ln.Go("nap", uts.DoubleVal(3.25))
	out, err := p.Wait()
	realElapsed := time.Since(realStart)
	virtualElapsed := v.Elapsed() - virtualBefore

	if err != nil {
		t.Fatalf("async nap failed: %v", err)
	}
	if out[0].F != 6.5 {
		t.Fatalf("nap(3.25) = %g, want 6.5", out[0].F)
	}
	if virtualElapsed < 5*time.Second {
		t.Errorf("virtual clock advanced only %v, procedure sleeps 5s", virtualElapsed)
	}
	if realElapsed >= 5*time.Second {
		t.Errorf("5s virtual nap took %v of real time", realElapsed)
	}
}

// jitterSample draws n backoff delays from the shared jitter source.
func jitterSample(n int) []time.Duration {
	p := CallPolicy{Backoff: 8 * time.Millisecond, MaxBackoff: 64 * time.Millisecond}.withDefaults()
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = p.backoffFor(i % 4)
	}
	return out
}

// TestSwapClockSeedsRetryJitter is the regression for deterministic
// retry timing: installing a virtual clock must re-seed the retry
// jitter RNG (DefaultVirtualRetrySeed), so two identical-seed
// simulation runs draw identical backoff sequences without any
// explicit SetRetrySeed call.
func TestSwapClockSeedsRetryJitter(t *testing.T) {
	sample := func() []time.Duration {
		v := vclock.NewVirtual()
		defer v.Stop()
		prev := SwapClock(v)
		defer SwapClock(prev)
		return jitterSample(8)
	}
	s1, s2 := sample(), sample()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("virtual-clock installs drew different jitter:\n%v\n%v", s1, s2)
	}
	// An explicit seed must also pin the sequence.
	SetRetrySeed(71)
	s3 := jitterSample(8)
	SetRetrySeed(71)
	s4 := jitterSample(8)
	if !reflect.DeepEqual(s3, s4) {
		t.Errorf("SetRetrySeed(71) drew different jitter:\n%v\n%v", s3, s4)
	}
}

package schooner

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"npss/internal/machine"
	"npss/internal/netsim"
	"npss/internal/uts"
)

// deployment is a complete test rig: a simulated network, a registry
// of programs, a Manager, and a Server on every host.
type deployment struct {
	net      *netsim.Network
	tr       *SimTransport
	reg      *Registry
	mgr      *Manager
	servers  map[string]*Server
	mgrHost  string
	cmu      sync.Mutex
	clientBy map[string]*Client
}

// newDeployment builds hosts (name -> arch), starts the Manager on the
// first listed host of mgrHost, and a Server everywhere.
func newDeployment(t *testing.T, mgrHost string, hosts map[string]*machine.Arch) *deployment {
	t.Helper()
	n := netsim.New()
	for name, arch := range hosts {
		n.MustAddHost(name, arch)
	}
	tr := NewSimTransport(n)
	reg := NewRegistry()
	mgr, err := StartManager(tr, mgrHost)
	if err != nil {
		t.Fatal(err)
	}
	d := &deployment{
		net: n, tr: tr, reg: reg, mgr: mgr, mgrHost: mgrHost,
		servers: make(map[string]*Server), clientBy: make(map[string]*Client),
	}
	for name := range hosts {
		srv, err := StartServer(tr, name, reg)
		if err != nil {
			t.Fatal(err)
		}
		d.servers[name] = srv
	}
	t.Cleanup(func() {
		d.mgr.Stop()
		for _, s := range d.servers {
			s.Stop()
		}
	})
	return d
}

// client returns a Client situated on the given host.
func (d *deployment) client(host string) *Client {
	d.cmu.Lock()
	defer d.cmu.Unlock()
	if c, ok := d.clientBy[host]; ok {
		return c
	}
	c := &Client{Transport: d.tr, Host: host, ManagerHost: d.mgrHost}
	d.clientBy[host] = c
	return c
}

// adderProgram is a C-language program exporting add and scale.
func adderProgram(path string) *Program {
	return &Program{
		Path:     path,
		Language: LangC,
		Build: func() (*Instance, error) {
			add := &BoundProc{
				Spec: uts.MustParseProc(`export add prog("a" val double, "b" val double, "sum" res double)`),
				Fn: func(in []uts.Value) ([]uts.Value, error) {
					return []uts.Value{uts.DoubleVal(in[0].F + in[1].F)}, nil
				},
			}
			scale := &BoundProc{
				Spec: uts.MustParseProc(`export scale prog("xs" var array[3] of double, "k" val double)`),
				Fn: func(in []uts.Value) ([]uts.Value, error) {
					xs, _ := in[0].Floats()
					k := in[1].F
					return []uts.Value{uts.DoubleArray(xs[0]*k, xs[1]*k, xs[2]*k)}, nil
				},
			}
			return NewInstance(add, scale)
		},
	}
}

// shaftProgram is a Fortran-language program mirroring the paper's
// npss-shaft file: setshaft computes a correction factor once, shaft
// computes the spool acceleration each iteration.
func shaftProgram(path string) *Program {
	return &Program{
		Path:     path,
		Language: LangFortran,
		Build: func() (*Instance, error) {
			setshaft := &BoundProc{
				Spec: uts.MustParseProc(`export setshaft prog(
					"ecom" val array[4] of double, "incom" val integer,
					"etur" val array[4] of double, "intur" val integer,
					"ecorr" res double)`),
				Fn: func(in []uts.Value) ([]uts.Value, error) {
					ecom, _ := in[0].Floats()
					etur, _ := in[2].Floats()
					var sum float64
					for i := range ecom {
						sum += etur[i] - ecom[i]
					}
					return []uts.Value{uts.DoubleVal(1 + sum/100)}, nil
				},
			}
			shaft := &BoundProc{
				Spec: uts.MustParseProc(`export shaft prog(
					"ecom" val array[4] of double, "incom" val integer,
					"etur" val array[4] of double, "intur" val integer,
					"ecorr" val double, "xspool" val double, "xmyi" val double,
					"dxspl" res double)`),
				Fn: func(in []uts.Value) ([]uts.Value, error) {
					ecom, _ := in[0].Floats()
					etur, _ := in[2].Floats()
					ecorr, xspool, xmyi := in[4].F, in[5].F, in[6].F
					var qc, qt float64
					for i := range ecom {
						qc += ecom[i]
						qt += etur[i]
					}
					if xspool == 0 || xmyi == 0 {
						return nil, fmt.Errorf("shaft: zero spool speed or inertia")
					}
					return []uts.Value{uts.DoubleVal(ecorr * (qt - qc) / (xmyi * xspool))}, nil
				},
			}
			return NewInstance(setshaft, shaft)
		},
	}
}

// counterProgram is a stateful program exporting next, with a state
// clause enabling migration with state transfer.
func counterProgram(path string) *Program {
	return &Program{
		Path:     path,
		Language: LangC,
		Build: func() (*Instance, error) {
			var count int64
			next := &BoundProc{
				Spec: uts.MustParseProc(`export next prog("n" res integer) state("count" integer)`),
				Fn: func(in []uts.Value) ([]uts.Value, error) {
					count++
					return []uts.Value{uts.MustInt(int(count))}, nil
				},
				GetState: func() ([]uts.Value, error) {
					return []uts.Value{uts.MustInt(int(count))}, nil
				},
				SetState: func(vals []uts.Value) error {
					count = vals[0].I
					return nil
				},
			}
			return NewInstance(next)
		},
	}
}

func ieeeHosts() map[string]*machine.Arch {
	return map[string]*machine.Arch{
		"avs-sparc": machine.SPARC,
		"sgi-lerc":  machine.SGI,
		"rs6000":    machine.RS6000,
	}
}

func TestBasicRPC(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("adder-module")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if ln.ID() == 0 || ln.Module() != "adder-module" {
		t.Errorf("line = %d %q", ln.ID(), ln.Module())
	}
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	if err := ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`)); err != nil {
		t.Fatal(err)
	}
	out, err := ln.Call("add", uts.DoubleVal(2.25), uts.DoubleVal(3.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].F != 5.75 {
		t.Errorf("add = %v", out)
	}
	// var parameter: in and out.
	if err := ln.Import(uts.MustParseProc(`import scale prog("xs" var array[3] of double, "k" val double)`)); err != nil {
		t.Fatal(err)
	}
	out, err = ln.Call("scale", uts.DoubleArray(1, 2, 3), uts.DoubleVal(10))
	if err != nil {
		t.Fatal(err)
	}
	xs, _ := out[0].Floats()
	if xs[0] != 10 || xs[1] != 20 || xs[2] != 30 {
		t.Errorf("scale = %v", xs)
	}
}

func TestPaperShaftSequence(t *testing.T) {
	// The paper's usage: setshaft once at steady-state start, shaft
	// repeatedly during the transient.
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(shaftProgram("/npss/npss-shaft"))
	ln, _ := d.client("avs-sparc").ContactSchx("shaft-module")
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/npss-shaft", "rs6000"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import setshaft prog(
		"ecom" val array[4] of double, "incom" val integer,
		"etur" val array[4] of double, "intur" val integer,
		"ecorr" res double)`))
	ln.Import(uts.MustParseProc(`import shaft prog(
		"ecom" val array[4] of double, "incom" val integer,
		"etur" val array[4] of double, "intur" val integer,
		"ecorr" val double, "xspool" val double, "xmyi" val double,
		"dxspl" res double)`))
	ecom := uts.DoubleArray(10, 10, 10, 10)
	etur := uts.DoubleArray(11, 11, 11, 11)
	out, err := ln.Call("setshaft", ecom, uts.MustInt(4), etur, uts.MustInt(4))
	if err != nil {
		t.Fatal(err)
	}
	ecorr := out[0]
	if ecorr.F != 1.04 {
		t.Errorf("ecorr = %v", ecorr.F)
	}
	for i := 0; i < 10; i++ {
		out, err := ln.Call("shaft", ecom, uts.MustInt(4), etur, uts.MustInt(4),
			ecorr, uts.DoubleVal(0.9), uts.DoubleVal(2.0))
		if err != nil {
			t.Fatal(err)
		}
		want := 1.04 * 4 / (2.0 * 0.9)
		if diff := out[0].F - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("dxspl = %v, want %v", out[0].F, want)
		}
	}
	// Application errors propagate with context.
	_, err = ln.Call("shaft", ecom, uts.MustInt(4), etur, uts.MustInt(4),
		ecorr, uts.DoubleVal(0), uts.DoubleVal(2.0))
	if err == nil || !strings.Contains(err.Error(), "zero spool") {
		t.Errorf("application error = %v", err)
	}
}

func TestSubsetImport(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(shaftProgram("/npss/npss-shaft"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	ln.StartRemote("/npss/npss-shaft", "sgi-lerc")
	// Import only some of setshaft's parameters; omitted val params
	// are zero-filled at the export.
	ln.Import(uts.MustParseProc(`import setshaft prog(
		"etur" val array[4] of double, "intur" val integer, "ecorr" res double)`))
	out, err := ln.Call("setshaft", uts.DoubleArray(5, 5, 5, 5), uts.MustInt(4))
	if err != nil {
		t.Fatal(err)
	}
	// ecom was zero-filled: sum = 20, ecorr = 1.2.
	if diff := out[0].F - 1.2; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("ecorr = %v, want 1.2", out[0].F)
	}
}

func TestTypeCheckMismatch(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	ln.StartRemote("/npss/adder", "sgi-lerc")
	// Wrong type for "a".
	ln.Import(uts.MustParseProc(`import add prog("a" val float, "b" val double, "sum" res double)`))
	_, err := ln.Call("add", uts.FloatVal(1), uts.DoubleVal(2))
	if err == nil || !strings.Contains(err.Error(), "type check") {
		t.Errorf("type mismatch = %v", err)
	}
}

func TestFortranCaseSynonyms(t *testing.T) {
	hosts := ieeeHosts()
	hosts["cray-lerc"] = machine.CrayYMP
	d := newDeployment(t, "avs-sparc", hosts)
	d.reg.MustRegister(shaftProgram("/npss/npss-shaft"))

	// On the Cray the Fortran compiler upper-cases the exported names;
	// a client importing lower-case "setshaft" must still bind.
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/npss-shaft", "cray-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import setshaft prog(
		"ecom" val array[4] of double, "incom" val integer,
		"etur" val array[4] of double, "intur" val integer,
		"ecorr" res double)`))
	if _, err := ln.Call("setshaft", uts.DoubleArray(1, 1, 1, 1), uts.MustInt(4),
		uts.DoubleArray(1, 1, 1, 1), uts.MustInt(4)); err != nil {
		t.Fatalf("lower-case call to Cray-hosted Fortran: %v", err)
	}

	// And upper-case imports work against a lower-casing machine.
	ln2, _ := d.client("avs-sparc").ContactSchx("m2")
	defer ln2.IQuit()
	if err := ln2.StartRemote("/npss/npss-shaft", "rs6000"); err != nil {
		t.Fatal(err)
	}
	ln2.Import(uts.MustParseProc(`import SETSHAFT prog(
		"ecom" val array[4] of double, "incom" val integer,
		"etur" val array[4] of double, "intur" val integer,
		"ecorr" res double)`))
	if _, err := ln2.Call("SETSHAFT", uts.DoubleArray(1, 1, 1, 1), uts.MustInt(4),
		uts.DoubleArray(1, 1, 1, 1), uts.MustInt(4)); err != nil {
		t.Fatalf("upper-case call to RS6000-hosted Fortran: %v", err)
	}
}

func TestCNamesAreCaseSensitive(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	ln.StartRemote("/npss/adder", "sgi-lerc")
	ln.Import(uts.MustParseProc(`import ADD prog("a" val double, "b" val double, "sum" res double)`))
	if _, err := ln.Call("ADD", uts.DoubleVal(1), uts.DoubleVal(2)); err == nil {
		t.Error("case-folded lookup of a C procedure succeeded; C names must be exact")
	}
}

func TestDuplicateNamesWithinLineRejected(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	err := ln.StartRemote("/npss/adder", "rs6000")
	if err == nil || !strings.Contains(err.Error(), "already bound") {
		t.Errorf("duplicate start = %v", err)
	}
}

func TestDuplicateNamesAcrossLines(t *testing.T) {
	// The F100 network has two shaft modules: each line gets its own
	// instance of the same procedure names.
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(counterProgram("/npss/counter"))
	lnA, _ := d.client("avs-sparc").ContactSchx("low-shaft")
	lnB, _ := d.client("avs-sparc").ContactSchx("high-shaft")
	defer lnA.IQuit()
	defer lnB.IQuit()
	if err := lnA.StartRemote("/npss/counter", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	if err := lnB.StartRemote("/npss/counter", "rs6000"); err != nil {
		t.Fatal(err)
	}
	imp := uts.MustParseProc(`import next prog("n" res integer)`)
	lnA.Import(imp)
	lnB.Import(imp)
	// Each line has an independent instance with independent state.
	for i := 1; i <= 3; i++ {
		out, err := lnA.Call("next")
		if err != nil || out[0].I != int64(i) {
			t.Fatalf("lnA next #%d = %v, %v", i, out, err)
		}
	}
	out, err := lnB.Call("next")
	if err != nil || out[0].I != 1 {
		t.Fatalf("lnB next = %v, %v (state leaked between lines)", out, err)
	}
	if d.mgr.LineCount() != 2 {
		t.Errorf("LineCount = %d", d.mgr.LineCount())
	}
}

func TestPerLineShutdown(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(counterProgram("/npss/counter"))
	lnA, _ := d.client("avs-sparc").ContactSchx("a")
	lnB, _ := d.client("avs-sparc").ContactSchx("b")
	lnA.StartRemote("/npss/counter", "sgi-lerc")
	lnB.StartRemote("/npss/counter", "sgi-lerc")
	imp := uts.MustParseProc(`import next prog("n" res integer)`)
	lnA.Import(imp)
	lnB.Import(imp)
	if _, err := lnA.Call("next"); err != nil {
		t.Fatal(err)
	}
	if _, err := lnB.Call("next"); err != nil {
		t.Fatal(err)
	}
	// Quit A: only A's processes die.
	if err := lnA.IQuit(); err != nil {
		t.Fatal(err)
	}
	if _, err := lnA.Call("next"); err == nil {
		t.Error("call on quit line succeeded")
	}
	if out, err := lnB.Call("next"); err != nil || out[0].I != 2 {
		t.Errorf("lnB after A quit = %v, %v", out, err)
	}
	lnB.IQuit()
	// Deadline-free check that all processes eventually stop.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d.servers["sgi-lerc"].ProcessCount() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("processes still alive after both quits: %d", d.servers["sgi-lerc"].ProcessCount())
}

func TestConnectionDropShutsLine(t *testing.T) {
	// A module that disappears without sch_i_quit (error case): the
	// Manager shuts down the line's remote computations.
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(counterProgram("/npss/counter"))
	ln, _ := d.client("avs-sparc").ContactSchx("dying")
	ln.StartRemote("/npss/counter", "sgi-lerc")
	if d.mgr.LineCount() != 1 {
		t.Fatalf("LineCount = %d", d.mgr.LineCount())
	}
	// Simulate module crash: close the manager connection directly.
	ln.mgr.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d.mgr.LineCount() == 0 && d.servers["sgi-lerc"].ProcessCount() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("line not cleaned after connection drop: lines=%d procs=%d",
		d.mgr.LineCount(), d.servers["sgi-lerc"].ProcessCount())
}

func TestMigrationStateless(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	ln.StartRemote("/npss/adder", "sgi-lerc")
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(2)); err != nil {
		t.Fatal(err)
	}
	// Move to rs6000 (scheduled downtime scenario).
	if err := ln.Move("add", "rs6000", false); err != nil {
		t.Fatal(err)
	}
	out, err := ln.Call("add", uts.DoubleVal(3), uts.DoubleVal(4))
	if err != nil || out[0].F != 7 {
		t.Fatalf("post-move call = %v, %v", out, err)
	}
	if d.servers["rs6000"].ProcessCount() != 1 {
		t.Errorf("rs6000 processes = %d", d.servers["rs6000"].ProcessCount())
	}
	deadline := time.Now().Add(2 * time.Second)
	for d.servers["sgi-lerc"].ProcessCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.servers["sgi-lerc"].ProcessCount() != 0 {
		t.Errorf("old process still on sgi-lerc")
	}
}

func TestMigrationLazyCacheRecovery(t *testing.T) {
	// A second module bound to a shared procedure discovers the move
	// lazily: its cached call fails, it re-asks the Manager, retries.
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	owner, _ := d.client("avs-sparc").ContactSchx("owner")
	other, _ := d.client("sgi-lerc").ContactSchx("other")
	defer owner.IQuit()
	defer other.IQuit()
	if err := owner.StartShared("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	imp := uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`)
	owner.Import(imp)
	other.Import(imp)
	// Both bind and call.
	if _, err := owner.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
		t.Fatal(err)
	}
	// Owner moves the shared procedure; other's cache is now stale.
	if err := owner.MoveShared("add", "rs6000", false); err != nil {
		t.Fatal(err)
	}
	out, err := other.Call("add", uts.DoubleVal(20), uts.DoubleVal(22))
	if err != nil {
		t.Fatalf("stale-cache recovery failed: %v", err)
	}
	if out[0].F != 42 {
		t.Errorf("post-move result = %v", out[0].F)
	}
}

func TestMigrationWithState(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(counterProgram("/npss/counter"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	ln.StartRemote("/npss/counter", "sgi-lerc")
	ln.Import(uts.MustParseProc(`import next prog("n" res integer)`))
	for i := 1; i <= 5; i++ {
		out, err := ln.Call("next")
		if err != nil || out[0].I != int64(i) {
			t.Fatalf("pre-move next = %v, %v", out, err)
		}
	}
	// Stateless move would reset the counter; state transfer must not.
	if err := ln.Move("next", "rs6000", true); err != nil {
		t.Fatal(err)
	}
	out, err := ln.Call("next")
	if err != nil || out[0].I != 6 {
		t.Fatalf("post-move next = %v, %v (state lost)", out, err)
	}
	// Contrast: a stateless move resets.
	if err := ln.Move("next", "sgi-lerc", false); err != nil {
		t.Fatal(err)
	}
	out, err = ln.Call("next")
	if err != nil || out[0].I != 1 {
		t.Fatalf("stateless move next = %v, %v (state unexpectedly kept)", out, err)
	}
}

func TestSharedProcedureSurvivesLineQuit(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	a, _ := d.client("avs-sparc").ContactSchx("a")
	b, _ := d.client("avs-sparc").ContactSchx("b")
	defer b.IQuit()
	if err := a.StartShared("/npss/adder", "rs6000"); err != nil {
		t.Fatal(err)
	}
	imp := uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`)
	a.Import(imp)
	b.Import(imp)
	if _, err := a.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
		t.Fatal(err)
	}
	a.IQuit()
	// b still reaches the shared procedure after a's line is gone.
	out, err := b.Call("add", uts.DoubleVal(2), uts.DoubleVal(3))
	if err != nil || out[0].F != 5 {
		t.Fatalf("shared call after owner quit = %v, %v", out, err)
	}
}

func TestLineLocalShadowsShared(t *testing.T) {
	// "Mapping requests ... checked first against procedures in the
	// line ... then against a list of shared procedures."
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(counterProgram("/npss/counter"))
	d.reg.MustRegister(&Program{
		Path:     "/npss/counter-shared",
		Language: LangC,
		Build: func() (*Instance, error) {
			next := &BoundProc{
				Spec: uts.MustParseProc(`export next prog("n" res integer)`),
				Fn: func(in []uts.Value) ([]uts.Value, error) {
					return []uts.Value{uts.MustInt(-99)}, nil
				},
			}
			return NewInstance(next)
		},
	})
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	if err := ln.StartShared("/npss/counter-shared", "rs6000"); err != nil {
		t.Fatal(err)
	}
	if err := ln.StartRemote("/npss/counter", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import next prog("n" res integer)`))
	out, err := ln.Call("next")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].I != 1 {
		t.Errorf("line-local procedure not preferred: got %d", out[0].I)
	}
}

func TestConcurrentLines(t *testing.T) {
	// Lines execute independently: concurrent calls from many lines
	// must not interfere.
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(counterProgram("/npss/counter"))
	const lines = 8
	const calls = 25
	var wg sync.WaitGroup
	errs := make(chan error, lines)
	for i := 0; i < lines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ln, err := d.client("avs-sparc").ContactSchx(fmt.Sprintf("mod-%d", i))
			if err != nil {
				errs <- err
				return
			}
			defer ln.IQuit()
			host := []string{"sgi-lerc", "rs6000"}[i%2]
			if err := ln.StartRemote("/npss/counter", host); err != nil {
				errs <- err
				return
			}
			ln.Import(uts.MustParseProc(`import next prog("n" res integer)`))
			for j := 1; j <= calls; j++ {
				out, err := ln.Call("next")
				if err != nil {
					errs <- err
					return
				}
				if out[0].I != int64(j) {
					errs <- fmt.Errorf("line %d: next = %d, want %d", i, out[0].I, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHeterogeneousRangeError(t *testing.T) {
	hosts := ieeeHosts()
	hosts["ibm-mainframe"] = machine.IBM370
	d := newDeployment(t, "avs-sparc", hosts)
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	ln.StartRemote("/npss/adder", "ibm-mainframe")
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	// In range: works (with hex-float precision).
	out, err := ln.Call("add", uts.DoubleVal(1.5), uts.DoubleVal(2.5))
	if err != nil || out[0].F != 4 {
		t.Fatalf("in-range call = %v, %v", out, err)
	}
	// 1e100 exceeds IBM hex float range: the conversion error must
	// propagate to the caller, not silently become infinity.
	_, err = ln.Call("add", uts.DoubleVal(1e100), uts.DoubleVal(0))
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range call = %v", err)
	}
}

func TestCrayPrecisionAcrossRPC(t *testing.T) {
	hosts := ieeeHosts()
	hosts["cray-lerc"] = machine.CrayYMP
	d := newDeployment(t, "avs-sparc", hosts)
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	ln.StartRemote("/npss/adder", "cray-lerc")
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	a, b := 1.0/3.0, 1.0/7.0
	out, err := ln.Call("add", uts.DoubleVal(a), uts.DoubleVal(b))
	if err != nil {
		t.Fatal(err)
	}
	got, want := out[0].F, a+b
	rel := (got - want) / want
	if rel < 0 {
		rel = -rel
	}
	if rel > 1e-13 {
		t.Errorf("Cray add error %g too large", rel)
	}
}

func TestErrorPaths(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()

	// Start on unknown machine.
	if err := ln.StartRemote("/npss/adder", "ghost"); err == nil {
		t.Error("start on unknown machine succeeded")
	}
	// Start unknown executable.
	if err := ln.StartRemote("/npss/missing", "sgi-lerc"); err == nil {
		t.Error("start of unknown executable succeeded")
	}
	// Empty path/machine.
	if err := ln.StartRemote("", "sgi-lerc"); err == nil {
		t.Error("empty path accepted")
	}
	// Call without import spec.
	if _, err := ln.Call("add"); err == nil {
		t.Error("call without import succeeded")
	}
	// Lookup of never-started procedure.
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(2)); err == nil {
		t.Error("call before start succeeded")
	}
	// Wrong argument count.
	ln.StartRemote("/npss/adder", "sgi-lerc")
	if _, err := ln.Call("add", uts.DoubleVal(1)); err == nil {
		t.Error("short argument list accepted")
	}
	// Duplicate import registration.
	if err := ln.Import(uts.MustParseProc(`import add prog("a" val double)`)); err == nil {
		t.Error("duplicate import accepted")
	}
	// Move of unknown procedure.
	if err := ln.Move("bogus", "rs6000", false); err == nil {
		t.Error("move of unknown procedure succeeded")
	}
	// Stateless program cannot move with state.
	if err := ln.Move("add", "rs6000", true); err == nil {
		t.Error("state move of stateless procedure succeeded")
	}
}

func TestManagerStopShutsEverything(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(counterProgram("/npss/counter"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	ln.StartRemote("/npss/counter", "sgi-lerc")
	d.mgr.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for d.servers["sgi-lerc"].ProcessCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := d.servers["sgi-lerc"].ProcessCount(); n != 0 {
		t.Errorf("%d processes survive manager stop", n)
	}
	// New registrations are refused.
	if _, err := d.client("avs-sparc").ContactSchx("late"); err == nil {
		t.Error("registration after manager stop succeeded")
	}
}

func TestManagerPersistsAcrossRuns(t *testing.T) {
	// The persistent Manager handles multiple runs: load a "model",
	// quit it, load another.
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	for run := 0; run < 3; run++ {
		ln, err := d.client("avs-sparc").ContactSchx(fmt.Sprintf("run-%d", run))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
		if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if err := ln.IQuit(); err != nil {
			t.Fatalf("run %d quit: %v", run, err)
		}
	}
	if d.mgr.LineCount() != 0 {
		t.Errorf("lines remain: %v", d.mgr.Lines())
	}
}

func TestLinesListing(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	a, _ := d.client("avs-sparc").ContactSchx("first")
	b, _ := d.client("avs-sparc").ContactSchx("second")
	defer a.IQuit()
	defer b.IQuit()
	lines := d.mgr.Lines()
	if len(lines) != 2 || !strings.HasSuffix(lines[0], "first") || !strings.HasSuffix(lines[1], "second") {
		t.Errorf("Lines = %v", lines)
	}
}

func TestDoubleIQuitIsIdempotent(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	if err := ln.IQuit(); err != nil {
		t.Fatal(err)
	}
	if err := ln.IQuit(); err != nil {
		t.Errorf("second IQuit: %v", err)
	}
}

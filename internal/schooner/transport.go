// Package schooner implements the Schooner heterogeneous remote
// procedure call facility: the runtime system that, together with the
// UTS type system (package uts) and the stub compiler (package
// stubgen), lets a program invoke procedures on other machines
// regardless of architecture or implementation language.
//
// The runtime consists of three kinds of system component, exactly as
// in the paper:
//
//   - the Manager, one per executing program: it starts and shuts down
//     processes, maintains the table of exported procedures and their
//     locations, and performs runtime type-checking of calls against
//     the UTS specifications;
//
//   - Servers, one per machine: the Manager asks a machine's Server to
//     instantiate procedure files as processes;
//
//   - the communication library (Client/Line), linked with every
//     module, which locates and invokes remote procedures.
//
// The package implements the extended Schooner model of section 4.2:
// a persistent Manager serving multiple lines (independent sequential
// threads of control), per-line procedure name databases permitting
// duplicate names across lines, per-line shutdown, procedure
// migration with lazy client cache invalidation, shared procedures
// visible to every line, and the dynamic startup protocol in which a
// module contacts the Manager when it is configured rather than the
// Manager launching everything a priori.
package schooner

import (
	"fmt"
	"net"
	"sort"
	"sync"

	"npss/internal/machine"
	"npss/internal/netsim"
	"npss/internal/trace"
	"npss/internal/wire"
)

// addrHost extracts the machine part of a dialable "host:port"
// address, for per-host metric labels and span annotations.
func addrHost(addr string) string {
	host, _, err := netsim.SplitAddr(addr)
	if err != nil {
		return addr
	}
	return host
}

// countDial records a labeled per-destination dial counter when
// detailed tracing is enabled; a no-op otherwise.
func countDial(addr string) {
	if trace.Enabled() {
		trace.Count(trace.LKey("schooner.transport.dials", trace.Label{Key: "host", Value: addrHost(addr)}))
	}
}

// ManagerPort is the well-known port the Manager listens on.
const ManagerPort = "schx-manager"

// ServerPort is the well-known port every Server listens on.
const ServerPort = "schx-server"

// Transport abstracts how Schooner components reach each other, so the
// same runtime runs over the in-process network simulator and over
// real TCP sockets.
type Transport interface {
	// Listen opens a listener on the named host. Port may be empty for
	// an ephemeral port; the listener's Addr is dialable.
	Listen(host, port string) (Listener, error)
	// Dial connects from one host to an address returned by a
	// listener on another (or the same) host.
	Dial(fromHost, addr string) (wire.Conn, error)
	// HostArch reports the simulated architecture of a host.
	HostArch(host string) (*machine.Arch, error)
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (wire.Conn, error)
	Close() error
	Addr() string
}

// HostLister is optionally implemented by transports that know the
// full machine universe; the Manager's health monitor uses it to
// decide which machines to heartbeat and where failover may place
// restarted processes. Both SimTransport and TCPTransport implement
// it.
type HostLister interface {
	Hosts() []string
}

// SimTransport runs Schooner over a netsim.Network.
type SimTransport struct {
	Net *netsim.Network
}

// NewSimTransport wraps a simulated network.
func NewSimTransport(n *netsim.Network) *SimTransport { return &SimTransport{Net: n} }

// Listen opens a port on a simulated host.
func (t *SimTransport) Listen(host, port string) (Listener, error) {
	h, err := t.Net.Host(host)
	if err != nil {
		return nil, err
	}
	return h.Listen(port)
}

// Dial connects across the simulated network.
func (t *SimTransport) Dial(fromHost, addr string) (wire.Conn, error) {
	h, err := t.Net.Host(fromHost)
	if err != nil {
		return nil, err
	}
	countDial(addr)
	return h.Dial(addr)
}

// Hosts lists the simulated hosts, sorted. It satisfies the optional
// HostLister interface the Manager's health monitor uses to learn the
// machine universe.
func (t *SimTransport) Hosts() []string { return t.Net.Hosts() }

// HostArch reports a simulated host's architecture.
func (t *SimTransport) HostArch(host string) (*machine.Arch, error) {
	h, err := t.Net.Host(host)
	if err != nil {
		return nil, err
	}
	return h.Arch(), nil
}

// TCPTransport runs Schooner over real TCP sockets on the local
// machine: every logical host maps to 127.0.0.1 with kernel-assigned
// ports, and a shared rendezvous table maps "host:port" names to real
// socket addresses. This is the transport the cmd/schooner-* daemons
// use to emulate a multi-machine deployment with real processes.
type TCPTransport struct {
	mu    sync.Mutex
	archs map[string]*machine.Arch
	// names maps logical "host:port" to "127.0.0.1:nnnn".
	names map[string]string
}

// NewTCPTransport creates a TCP transport with the given host
// architecture table.
func NewTCPTransport(archs map[string]*machine.Arch) *TCPTransport {
	cp := make(map[string]*machine.Arch, len(archs))
	for k, v := range archs {
		cp[k] = v
	}
	return &TCPTransport{archs: cp, names: make(map[string]string)}
}

// AddHost registers a logical host after construction.
func (t *TCPTransport) AddHost(name string, arch *machine.Arch) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.archs[name] = arch
}

// Hosts lists the registered logical hosts, sorted.
func (t *TCPTransport) Hosts() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.archs))
	for h := range t.archs {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

type tcpListener struct {
	t       *TCPTransport
	inner   net.Listener
	logical string
}

func (l *tcpListener) Accept() (wire.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return wire.NewStreamConn(c, c.RemoteAddr().String()), nil
}

func (l *tcpListener) Close() error {
	l.t.mu.Lock()
	delete(l.t.names, l.logical)
	l.t.mu.Unlock()
	return l.inner.Close()
}

func (l *tcpListener) Addr() string { return l.logical }

// Listen opens a TCP listener bound to 127.0.0.1 and registers its
// logical name.
func (t *TCPTransport) Listen(host, port string) (Listener, error) {
	t.mu.Lock()
	if _, ok := t.archs[host]; !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("schooner: unknown host %q", host)
	}
	t.mu.Unlock()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if port == "" {
		port = fmt.Sprintf("eph-%d", inner.Addr().(*net.TCPAddr).Port)
	}
	logical := netsim.JoinAddr(host, port)
	t.mu.Lock()
	if _, dup := t.names[logical]; dup {
		t.mu.Unlock()
		inner.Close()
		return nil, fmt.Errorf("schooner: port %q already in use on %s", port, host)
	}
	t.names[logical] = inner.Addr().String()
	t.mu.Unlock()
	return &tcpListener{t: t, inner: inner, logical: logical}, nil
}

// Dial resolves a logical address and connects over TCP.
func (t *TCPTransport) Dial(fromHost, addr string) (wire.Conn, error) {
	t.mu.Lock()
	real, ok := t.names[addr]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("schooner: connection refused: no listener at %q", addr)
	}
	countDial(addr)
	c, err := net.Dial("tcp", real)
	if err != nil {
		return nil, err
	}
	return wire.NewStreamConn(c, addr), nil
}

// HostArch reports a logical host's architecture.
func (t *TCPTransport) HostArch(host string) (*machine.Arch, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a, ok := t.archs[host]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("schooner: unknown host %q", host)
}

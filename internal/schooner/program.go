package schooner

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"npss/internal/uts"
)

// Language identifies the implementation language of a procedure file,
// which determines the compiler's procedure-naming convention. Fortran
// compilers fold case (lower everywhere except the Cray, which folds
// upper), so Fortran procedure names are matched case-insensitively
// and registered under both case forms as synonyms; C names are exact.
type Language int

const (
	// LangFortran procedures get case-folded names.
	LangFortran Language = iota
	// LangC procedures keep their exact names.
	LangC
)

// String names the language.
func (l Language) String() string {
	switch l {
	case LangFortran:
		return "fortran"
	case LangC:
		return "c"
	}
	return fmt.Sprintf("Language(%d)", int(l))
}

// Handler is the implementation of one exported procedure: it receives
// the in-parameters (val and var, in declaration order) and returns
// the out-parameters (res and var, in declaration order).
type Handler func(in []uts.Value) (out []uts.Value, err error)

// BoundProc is one exported procedure inside a running instance: its
// export specification bound to an implementation. GetState and
// SetState are optional and implement the state-transfer extension for
// migrating non-stateless procedures; when present they must produce
// and accept values matching the spec's state clause.
type BoundProc struct {
	Spec     *uts.ProcSpec
	Fn       Handler
	GetState func() ([]uts.Value, error)
	SetState func([]uts.Value) error
}

// Instance is one process-worth of procedures: what the Server creates
// when the Manager asks it to instantiate a procedure file. Each
// instantiation gets fresh state, which is what makes stateless
// migration (shut down here, start anew there) correct.
type Instance struct {
	procs []*BoundProc
}

// NewInstance builds an instance from bound procedures, validating
// that every procedure has an export spec, an implementation, and a
// unique name, and that state accessors come in pairs.
func NewInstance(procs ...*BoundProc) (*Instance, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("schooner: instance needs at least one procedure")
	}
	seen := make(map[string]bool)
	for _, p := range procs {
		if p.Spec == nil || !p.Spec.Export {
			return nil, fmt.Errorf("schooner: procedure needs an export specification")
		}
		if p.Fn == nil {
			return nil, fmt.Errorf("schooner: procedure %q has no implementation", p.Spec.Name)
		}
		if (p.GetState == nil) != (p.SetState == nil) {
			return nil, fmt.Errorf("schooner: procedure %q must define both or neither state accessors", p.Spec.Name)
		}
		if len(p.Spec.State) > 0 && p.GetState == nil {
			return nil, fmt.Errorf("schooner: procedure %q declares state but has no accessors", p.Spec.Name)
		}
		if seen[p.Spec.Name] {
			return nil, fmt.Errorf("schooner: duplicate procedure %q in instance", p.Spec.Name)
		}
		seen[p.Spec.Name] = true
	}
	return &Instance{procs: procs}, nil
}

// Procs returns the instance's procedures.
func (i *Instance) Procs() []*BoundProc { return i.procs }

// Find locates a procedure by name. Matching is exact first; Fortran
// files additionally match case-insensitively, reproducing the
// compiler case-folding synonym rule.
func (i *Instance) Find(name string, lang Language) *BoundProc {
	for _, p := range i.procs {
		if p.Spec.Name == name {
			return p
		}
	}
	if lang == LangFortran {
		for _, p := range i.procs {
			if strings.EqualFold(p.Spec.Name, name) {
				return p
			}
		}
	}
	return nil
}

// SpecFile renders the instance's co-located export specification file.
func (i *Instance) SpecFile() *uts.SpecFile {
	f := &uts.SpecFile{}
	for _, p := range i.procs {
		f.Procs = append(f.Procs, p.Spec)
	}
	return f
}

// Program is a procedure file the Server can instantiate: the paper's
// remote executable (for example npss-shaft) with its co-located
// export specification. Build is called once per instantiation so
// every process gets fresh state.
type Program struct {
	// Path is the executable pathname the user types into the module's
	// path widget.
	Path string
	// Language selects the naming convention.
	Language Language
	// Build constructs a fresh instance.
	Build func() (*Instance, error)
}

// Registry maps executable paths to programs: the simulation's stand-in
// for the remote machines' filesystems. One registry is shared by all
// Servers in a deployment, as NFS did for the paper's testbed.
type Registry struct {
	mu       sync.Mutex
	programs map[string]*Program
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{programs: make(map[string]*Program)}
}

// Register adds a program; the path must be unused.
func (r *Registry) Register(p *Program) error {
	if p == nil || p.Path == "" || p.Build == nil {
		return fmt.Errorf("schooner: program needs a path and a build function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.programs[p.Path]; dup {
		return fmt.Errorf("schooner: program %q already registered", p.Path)
	}
	r.programs[p.Path] = p
	return nil
}

// MustRegister is Register for static deployment tables.
func (r *Registry) MustRegister(p *Program) {
	if err := r.Register(p); err != nil {
		panic(err)
	}
}

// Lookup finds a program by path.
func (r *Registry) Lookup(path string) (*Program, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.programs[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("schooner: no such executable %q", path)
}

// Paths lists registered paths, sorted.
func (r *Registry) Paths() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.programs))
	for p := range r.programs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

package schooner

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"npss/internal/flight"
	"npss/internal/logx"
	"npss/internal/trace"
	"npss/internal/uts"
	"npss/internal/wal"
	"npss/internal/wire"
)

// Manager is the central Schooner system process: it starts and shuts
// down procedure processes (through the per-machine Servers),
// maintains the table of exported procedures and their locations, and
// performs runtime type-checking of procedure calls against the UTS
// specifications.
//
// In the extended model the Manager is persistent: it outlives any one
// simulation run and serves multiple lines, each with its own
// procedure name database, plus one database of shared procedures
// available to every line.
type Manager struct {
	transport Transport
	host      string
	listener  Listener

	mu       sync.Mutex
	nextLine uint32
	lines    map[uint32]*line
	shared   *line // line id 0: the shared procedure database
	stopped  bool

	// Durability (see journal.go / checkpoint.go). journal is nil when
	// the Manager runs without a write-ahead log; checkpoints holds the
	// last acked state snapshot per process address; restored counts
	// checkpoint restores per pre-failover address (the no-double-
	// restore ledger DST verifies); subs are live KJournalTail
	// subscriptions; conns tracks serving connections so Crash can
	// sever them.
	journal     *wal.Log
	checkpoints map[string]map[string][]byte
	restored    map[string]int
	subs        map[*journalSub]struct{}
	conns       map[wire.Conn]struct{}
	ckStop      chan struct{}
	ckDone      chan struct{}

	// Health monitoring (see health.go); nil maps/channels when the
	// monitor is not running.
	hbPol  HealthPolicy
	health map[string]*hostHealth
	hbStop chan struct{}
	hbDone chan struct{}
}

// rpcTimeout bounds the Manager's own request/response round trips
// (spawn, shutdown, state transfer) so a lost message on a faulty
// link cannot hang the Manager.
const rpcTimeout = 3 * time.Second

// spawnAttempts is how many times the Manager retries a spawn whose
// transport failed (a dropped message, a flapping link) before
// reporting the failure.
const spawnAttempts = 3

// line is one thread of control and its procedure name database.
type line struct {
	id     uint32
	module string
	// names maps every lookup name (canonical plus case synonyms for
	// Fortran procedures) to its procedure reference.
	names map[string]*procRef
	// processes tracks the procedure processes belonging to the line,
	// keyed by address; one process may export several procedures.
	processes map[string]*remoteProc
}

// remoteProc is the Manager's record of one procedure process.
type remoteProc struct {
	path     string
	host     string
	addr     string
	language Language
	exports  []*uts.ProcSpec
	// specText is the raw spawn payload (language header plus UTS
	// export text) the Server returned, kept verbatim so the journal
	// can reproduce this record on replay.
	specText string
}

// procRef binds one lookup name to its process and export spec.
type procRef struct {
	proc *remoteProc
	spec *uts.ProcSpec
}

// ManagerConfig selects the Manager's durability behavior.
type ManagerConfig struct {
	// Journal is the control-plane write-ahead log. Nil runs the
	// Manager without durability, exactly as before.
	Journal *wal.Log
	// Recover replays the journal before serving: the name database is
	// rebuilt, surviving processes are re-adopted, and unreachable ones
	// are failed over (stateful ones restored from their last acked
	// checkpoint).
	Recover bool
	// CheckpointInterval enables the periodic stateful-state checkpoint
	// sweep; zero disables it.
	CheckpointInterval time.Duration
}

// StartManager launches a Manager with no durability. It listens on
// ManagerPort and runs until Stop.
func StartManager(t Transport, host string) (*Manager, error) {
	return StartManagerConfig(t, host, ManagerConfig{})
}

// StartManagerConfig launches the Manager on a host with the given
// durability configuration. Recovery (journal replay plus process
// re-adoption) completes before the listener opens, so a client that
// can reach the Manager always sees the recovered database.
func StartManagerConfig(t Transport, host string, cfg ManagerConfig) (*Manager, error) {
	m := &Manager{
		transport:   t,
		host:        host,
		lines:       make(map[uint32]*line),
		shared:      newLine(0, "<shared>"),
		journal:     cfg.Journal,
		checkpoints: make(map[string]map[string][]byte),
		restored:    make(map[string]int),
		subs:        make(map[*journalSub]struct{}),
		conns:       make(map[wire.Conn]struct{}),
	}
	if cfg.Recover && cfg.Journal != nil {
		if err := m.recover(); err != nil {
			return nil, err
		}
	}
	l, err := t.Listen(host, ManagerPort)
	if err != nil {
		return nil, err
	}
	m.listener = l
	go m.acceptLoop()
	if cfg.CheckpointInterval > 0 {
		m.StartCheckpoints(cfg.CheckpointInterval)
	}
	return m, nil
}

// recover rebuilds the name database from the journal and then walks
// every recorded process: reachable ones are re-adopted as-is,
// unreachable ones are failed over (with checkpoint restore for
// stateful ones) exactly as if their host had just been declared dead.
func (m *Manager) recover() error {
	if err := m.recoverFromJournal(); err != nil {
		return err
	}
	trace.Count("schooner.manager.recoveries")
	flight.Record(flight.Event{Kind: flight.KindRecover, Component: "manager",
		Host: m.host, Detail: fmt.Sprintf("journal seq %d", m.journal.LastSeq())})
	logx.For("manager", m.host).Info("name database rebuilt from journal",
		"journalSeq", m.journal.LastSeq(), "lines", len(m.lines))
	m.readoptProcesses()
	return nil
}

// readoptProcesses pings every recovered process and re-adopts the
// live ones; dead ones go through the failover path. Runs before the
// listener opens, ordered deterministically for DST.
func (m *Manager) readoptProcesses() {
	m.mu.Lock()
	var victims []victim
	collect := func(ln *line) {
		for _, pr := range sortedProcs(ln) {
			victims = append(victims, victim{ln, pr})
		}
	}
	collect(m.shared)
	for _, id := range sortedLineIDs(m.lines) {
		collect(m.lines[id])
	}
	m.mu.Unlock()
	for _, v := range victims {
		if m.pingProc(v.proc.addr) {
			trace.Count("schooner.manager.readopted")
			flight.Record(flight.Event{Kind: flight.KindReadopt, Component: "manager",
				Host: m.host, Line: v.ln.id, Name: v.proc.path, Detail: v.proc.addr})
			logx.For("manager", m.host).Info("re-adopted surviving process",
				"proc", v.proc.path, "host", v.proc.host, "line", v.ln.id)
			continue
		}
		// The process did not survive the outage. Its host may be fine
		// (the process alone died), so no host is excluded from the
		// failover placement.
		m.failoverVictim(v, "", nil)
	}
}

// pingProc probes one procedure process with a bounded KPing.
func (m *Manager) pingProc(addr string) bool {
	conn, err := m.transport.Dial(m.host, addr)
	if err != nil {
		return false
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KPing}); err != nil {
		return false
	}
	resp, err := recvTimeout(conn, rpcTimeout)
	return err == nil && resp.Kind == wire.KPong
}

// sortedLineIDs returns the line ids in ascending order.
func sortedLineIDs(lines map[uint32]*line) []uint32 {
	ids := make([]uint32, 0, len(lines))
	for id := range lines {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortedProcs returns a line's processes ordered by address.
func sortedProcs(ln *line) []*remoteProc {
	addrs := make([]string, 0, len(ln.processes))
	for a := range ln.processes {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	out := make([]*remoteProc, len(addrs))
	for i, a := range addrs {
		out[i] = ln.processes[a]
	}
	return out
}

func newLine(id uint32, module string) *line {
	return &line{
		id:        id,
		module:    module,
		names:     make(map[string]*procRef),
		processes: make(map[string]*remoteProc),
	}
}

// Host returns the machine the Manager runs on.
func (m *Manager) Host() string { return m.host }

// Addr returns the Manager's dialable address.
func (m *Manager) Addr() string { return m.listener.Addr() }

// Stop shuts down the Manager and every procedure process in every
// line, including shared procedures.
func (m *Manager) Stop() {
	m.StopHealth()
	m.StopCheckpoints()
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	var procs []*remoteProc
	for _, ln := range m.lines {
		for _, p := range ln.processes {
			procs = append(procs, p)
		}
	}
	for _, p := range m.shared.processes {
		procs = append(procs, p)
	}
	m.lines = make(map[uint32]*line)
	m.shared = newLine(0, "<shared>")
	for sub := range m.subs {
		close(sub.ch)
	}
	m.subs = make(map[*journalSub]struct{})
	journal := m.journal
	m.mu.Unlock()
	m.listener.Close()
	for _, p := range procs {
		m.shutdownProcess(p)
	}
	if journal != nil {
		journal.Close()
	}
}

// Crash simulates a Manager process death: serving stops instantly,
// every open connection is severed, and the journal is closed so no
// straggling handler can append to a log a recovered incarnation now
// owns — but, unlike Stop, the procedure processes are left running.
// That is exactly the crash a `-recover` restart (or a warm standby)
// must pick up after.
func (m *Manager) Crash() {
	m.StopHealth()
	m.StopCheckpoints()
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	conns := m.conns
	m.conns = make(map[wire.Conn]struct{})
	for sub := range m.subs {
		close(sub.ch)
	}
	m.subs = make(map[*journalSub]struct{})
	journal := m.journal
	m.mu.Unlock()
	m.listener.Close()
	for conn := range conns {
		conn.Close()
	}
	if journal != nil {
		journal.Close()
	}
	trace.Count("schooner.manager.crashes")
	logx.For("manager", m.host).Warn("manager crashed (simulated)")
}

// LineCount reports the number of live lines (excluding shared).
func (m *Manager) LineCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.lines)
}

// Lines describes the live lines for diagnostics: "id module" sorted
// by id.
func (m *Manager) Lines() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]int, 0, len(m.lines))
	for id := range m.lines {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		ln := m.lines[uint32(id)]
		out[i] = fmt.Sprintf("%d %s", id, ln.module)
	}
	return out
}

// NameBindings reports a line's procedure name database as lookup
// name -> host currently serving it; line 0 reports the shared
// database. Returns nil for an unknown line. It exists for invariant
// checking (the DST harness verifies the database after every
// migration and failover) and for diagnostics.
func (m *Manager) NameBindings(lineID uint32) map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ln := m.shared
	if lineID != 0 {
		var ok bool
		ln, ok = m.lines[lineID]
		if !ok {
			return nil
		}
	}
	out := make(map[string]string, len(ln.names))
	for name, ref := range ln.names {
		out[name] = ref.proc.host
	}
	return out
}

func (m *Manager) acceptLoop() {
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.stopped {
			m.mu.Unlock()
			conn.Close()
			continue
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		go func() {
			m.serve(conn)
			m.mu.Lock()
			delete(m.conns, conn)
			m.mu.Unlock()
		}()
	}
}

// serve handles one module connection. A connection registers at most
// one line; if the connection drops while its line is still live, the
// Manager treats it as a module failure and shuts the line down —
// "when an AVS module is removed from the network or an error occurs,
// the Manager terminates only the remote procedures within the
// affected line."
func (m *Manager) serve(conn wire.Conn) {
	defer conn.Close()
	var registered uint32
	var quit bool
	defer func() {
		if registered != 0 && !quit {
			m.quitLine(registered)
		}
	}()
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		// A traced request parents a Manager-side span: the client's
		// span context arrives in the envelope and the span tree
		// continues here (and, for spawns, on into the Server).
		var sp *trace.Span
		if req.Trace != 0 {
			sp = trace.StartChild(trace.SpanContext{Trace: req.Trace, Span: req.Span},
				"manager."+req.Kind.String(), m.host)
		}
		var resp *wire.Message
		switch req.Kind {
		case wire.KRegisterLine:
			if registered != 0 {
				resp = errMsg("schooner: connection already registered line %d", registered)
				break
			}
			id := m.registerLine(req.Name)
			if id == 0 {
				resp = errMsg("schooner: manager stopped")
				break
			}
			registered = id
			ctx := sp.Context()
			flight.Record(flight.Event{Kind: flight.KindLineRegister, Component: "manager",
				Host: m.host, Line: id, Trace: ctx.Trace, Span: ctx.Span, Name: req.Name})
			resp = &wire.Message{Kind: wire.KLineOK, Line: id}
		case wire.KAttachLine:
			if registered != 0 {
				resp = errMsg("schooner: connection already registered line %d", registered)
				break
			}
			id, errResp := m.attachLine(req.Line, req.Name)
			if errResp != nil {
				resp = errResp
				break
			}
			registered = id
			flight.Record(flight.Event{Kind: flight.KindLineRegister, Component: "manager",
				Host: m.host, Line: id, Name: req.Name, Detail: "reattach"})
			resp = &wire.Message{Kind: wire.KLineOK, Line: id}
		case wire.KJournalTail:
			// The tail handler owns the connection and streams until the
			// subscriber hangs up or the Manager stops.
			if sp != nil {
				sp.End()
			}
			m.serveJournalTail(conn, req)
			return
		case wire.KStartProc:
			resp = m.handleStartProc(registered, req, sp)
		case wire.KLookup:
			resp = m.handleLookup(registered, req)
		case wire.KMove:
			resp = m.handleMove(registered, req, sp)
		case wire.KStatus:
			resp = &wire.Message{Kind: wire.KStatusOK, Data: []byte(m.StatusReport())}
		case wire.KMetrics:
			resp = metricsReply()
		case wire.KSeries:
			resp = seriesReply()
		case wire.KProfile:
			resp = profileReply()
		case wire.KFlightDump:
			resp = &wire.Message{Kind: wire.KFlightDumpOK, Data: []byte(flight.DumpString())}
		case wire.KQuitLine:
			if registered == 0 {
				resp = errMsg("schooner: no line registered on this connection")
				break
			}
			m.quitLine(registered)
			quit = true
			resp = &wire.Message{Kind: wire.KQuitOK}
		case wire.KShutdown:
			resp = &wire.Message{Kind: wire.KShutdownOK}
			resp.Seq = req.Seq
			_ = conn.Send(resp)
			quit = true
			m.Stop()
			return
		case wire.KPing:
			resp = &wire.Message{Kind: wire.KPong}
		default:
			resp = errMsg("schooner: manager cannot handle %v", req.Kind)
		}
		if sp != nil {
			if resp.Kind == wire.KError {
				sp.Annotate("error", resp.Err)
			}
			sp.End()
		}
		resp.Seq = req.Seq
		if err := conn.Send(resp); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

func errMsg(format string, args ...any) *wire.Message {
	return &wire.Message{Kind: wire.KError, Err: fmt.Sprintf(format, args...)}
}

func (m *Manager) registerLine(module string) uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return 0
	}
	m.nextLine++
	id := m.nextLine
	m.lines[id] = newLine(id, module)
	m.journalAppend(&journalRecord{Op: jopLine, Line: id, Module: module})
	trace.Count("schooner.manager.lines")
	return id
}

// attachLine re-binds an existing line to a fresh connection: the
// recovery path a client takes when its original Manager connection
// died (Manager crash, standby takeover) but the line itself — which
// the journal preserved — is still live.
func (m *Manager) attachLine(id uint32, module string) (uint32, *wire.Message) {
	if id == 0 {
		return 0, errMsg("schooner: attach needs a line id")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return 0, errMsg("schooner: manager stopped")
	}
	ln, ok := m.lines[id]
	if !ok {
		return 0, errMsg("schooner: line %d unknown to this manager", id)
	}
	if ln.module != module {
		return 0, errMsg("schooner: line %d belongs to module %q, not %q", id, ln.module, module)
	}
	trace.Count("schooner.manager.attaches")
	return id, nil
}

// lineFor resolves a request's target database: the connection's own
// line, or the shared database when the request says line 0.
func (m *Manager) lineFor(registered, requested uint32) (*line, *wire.Message) {
	if registered == 0 {
		return nil, errMsg("schooner: no line registered on this connection")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if requested == 0 {
		return m.shared, nil
	}
	if requested != registered {
		return nil, errMsg("schooner: line %d does not belong to this connection", requested)
	}
	ln, ok := m.lines[requested]
	if !ok {
		return nil, errMsg("schooner: line %d no longer exists", requested)
	}
	return ln, nil
}

// handleStartProc asks the target machine's Server to instantiate the
// procedure file, then records its exports in the line's database.
// The request span (if any) continues into the spawn round trip.
func (m *Manager) handleStartProc(registered uint32, req *wire.Message, sp *trace.Span) *wire.Message {
	ln, errResp := m.lineFor(registered, req.Line)
	if errResp != nil {
		return errResp
	}
	path, host := req.Name, req.Str
	if path == "" || host == "" {
		return errMsg("schooner: start request needs a path and a machine")
	}
	proc, specs, err := m.spawn(host, path, sp.Context())
	if err != nil {
		return errMsg("schooner: starting %s on %s: %v", path, host, err)
	}
	if err := m.install(ln, proc, specs); err != nil {
		m.shutdownProcess(proc)
		return errMsg("%v", err)
	}
	trace.Count("schooner.manager.starts")
	ctx := sp.Context()
	flight.Record(flight.Event{Kind: flight.KindSpawn, Component: "manager",
		Host: m.host, Line: ln.id, Trace: ctx.Trace, Span: ctx.Span, Name: path, Detail: host})
	return &wire.Message{Kind: wire.KStartOK, Str: proc.addr}
}

// spawn contacts a machine's Server and instantiates a program there.
// Transport failures (dropped messages, timeouts) are retried a
// bounded number of times; a Server-reported error is final. ctx is
// the span context the KSpawn request carries to the Server (zero when
// untraced).
func (m *Manager) spawn(host, path string, ctx trace.SpanContext) (*remoteProc, []*uts.ProcSpec, error) {
	var lastErr error
	for attempt := 0; attempt < spawnAttempts; attempt++ {
		proc, specs, err, final := m.spawnOnce(host, path, ctx)
		if err == nil || final {
			return proc, specs, err
		}
		lastErr = err
		trace.Count("schooner.manager.spawn_retries")
	}
	return nil, nil, lastErr
}

// spawnOnce performs one spawn round trip; final reports whether the
// error (if any) is not worth retrying.
func (m *Manager) spawnOnce(host, path string, ctx trace.SpanContext) (_ *remoteProc, _ []*uts.ProcSpec, err error, final bool) {
	conn, err := m.transport.Dial(m.host, host+":"+ServerPort)
	if err != nil {
		return nil, nil, fmt.Errorf("no Schooner server on %s: %w", host, err), false
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KSpawn, Name: path, Trace: ctx.Trace, Span: ctx.Span}); err != nil {
		return nil, nil, err, false
	}
	resp, err := recvTimeout(conn, rpcTimeout)
	if err != nil {
		return nil, nil, err, false
	}
	if resp.Kind == wire.KError {
		return nil, nil, fmt.Errorf("%s", resp.Err), true
	}
	if resp.Kind != wire.KSpawnOK {
		return nil, nil, fmt.Errorf("unexpected %v from server", resp.Kind), true
	}
	lang, specText := splitSpawnPayload(string(resp.Data))
	specFile, err := uts.Parse(specText)
	if err != nil {
		return nil, nil, fmt.Errorf("bad export specification from %s: %w", path, err), true
	}
	exports := specFile.Exports()
	if len(exports) == 0 {
		return nil, nil, fmt.Errorf("%s exports no procedures", path), true
	}
	proc := &remoteProc{path: path, host: host, addr: resp.Str, language: lang,
		exports: exports, specText: string(resp.Data)}
	return proc, exports, nil, false
}

// splitSpawnPayload separates the optional "#language ..." header from
// the specification text. The header is a UTS comment, so a Manager
// that did not know about it would still parse the specs.
func splitSpawnPayload(data string) (Language, string) {
	lang := LangC
	if strings.HasPrefix(data, "#language fortran\n") {
		lang = LangFortran
	}
	return lang, data
}

// lookupNames returns all names a procedure is reachable under: the
// canonical export name, plus upper- and lower-case synonyms for
// Fortran procedures (the Manager "stored both the upper and lower
// case alternatives in its mapping tables").
func lookupNames(spec *uts.ProcSpec, lang Language) []string {
	names := []string{spec.Name}
	if lang == LangFortran {
		lower := strings.ToLower(spec.Name)
		upper := strings.ToUpper(spec.Name)
		for _, n := range []string{lower, upper} {
			if n != spec.Name {
				names = append(names, n)
			}
		}
	}
	return names
}

// install records a process's exports in a line database, enforcing
// the no-duplicate-names-within-a-line rule.
func (m *Manager) install(ln *line, proc *remoteProc, specs []*uts.ProcSpec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return fmt.Errorf("schooner: manager stopped")
	}
	// Validate before mutating.
	for _, spec := range specs {
		for _, n := range lookupNames(spec, proc.language) {
			if existing, dup := ln.names[n]; dup {
				return fmt.Errorf("schooner: procedure name %q already bound in line %d (to %s on %s); duplicate names are only permitted across lines",
					n, ln.id, existing.proc.path, existing.proc.host)
			}
		}
	}
	for _, spec := range specs {
		ref := &procRef{proc: proc, spec: spec}
		for _, n := range lookupNames(spec, proc.language) {
			ln.names[n] = ref
		}
	}
	ln.processes[proc.addr] = proc
	m.journalAppend(&journalRecord{Op: jopInstall, Line: ln.id, Path: proc.path,
		Host: proc.host, Addr: proc.addr, Specs: proc.specText})
	return nil
}

// findRef resolves a lookup name: the line's own database first, then
// the shared database — "mapping requests to the Manager will be
// checked first against procedures in the line from which the request
// is received, and then against a list of shared procedures."
func (m *Manager) findRef(ln *line, name string) *procRef {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ref, ok := ln.names[name]; ok {
		return ref
	}
	if ln.id != 0 {
		if ref, ok := m.shared.names[name]; ok {
			return ref
		}
	}
	return nil
}

// handleLookup maps a procedure name to an address, type-checking the
// caller's import specification against the export.
func (m *Manager) handleLookup(registered uint32, req *wire.Message) *wire.Message {
	ln, errResp := m.lineFor(registered, req.Line)
	if errResp != nil {
		return errResp
	}
	ref := m.findRef(ln, req.Name)
	if ref == nil {
		return errMsg("schooner: no procedure %q in line %d or shared database", req.Name, ln.id)
	}
	if len(req.Data) > 0 {
		imp, err := uts.ParseProc(string(req.Data))
		if err != nil {
			return errMsg("schooner: bad import specification for %q: %v", req.Name, err)
		}
		if err := uts.CheckImport(imp, ref.spec); err != nil {
			return errMsg("schooner: type check failed for %q: %v", req.Name, err)
		}
	}
	trace.Count("schooner.manager.lookups")
	if trace.Enabled() {
		trace.Count(trace.LKey("schooner.manager.lookups",
			trace.Label{Key: "proc", Value: req.Name},
			trace.Label{Key: "host", Value: ref.proc.host}))
	}
	return &wire.Message{Kind: wire.KLookupOK, Str: ref.proc.addr, Name: ref.spec.Name}
}

// handleMove relocates the process exporting the named procedure to a
// new machine: shut down the original, start a fresh copy, update the
// mapping tables. Clients discover the move lazily — their next call
// to the old address fails, and the automatic re-ask of the Manager
// finds the new location. When req.Data is "state", migration state is
// captured before shutdown and installed into the new process (the
// planned state-transfer extension).
func (m *Manager) handleMove(registered uint32, req *wire.Message, sp *trace.Span) *wire.Message {
	ln, errResp := m.lineFor(registered, req.Line)
	if errResp != nil {
		return errResp
	}
	newHost := req.Str
	if newHost == "" {
		return errMsg("schooner: move needs a target machine")
	}
	ref := m.findRef(ln, req.Name)
	if ref == nil {
		return errMsg("schooner: no procedure %q to move", req.Name)
	}
	old := ref.proc
	withState := string(req.Data) == "state"

	// Capture migration state before the original is shut down.
	var state map[string][]byte
	if withState {
		stateful := false
		for _, spec := range old.exports {
			if len(spec.State) > 0 {
				stateful = true
				break
			}
		}
		if !stateful {
			return errMsg("schooner: %s declares no state clause; use a stateless move", old.path)
		}
		var err error
		state, err = m.captureState(old)
		if err != nil {
			return errMsg("schooner: capturing state of %s: %v", old.path, err)
		}
	}

	// Paper ordering: shut down the original, then start the copy.
	m.shutdownProcess(old)
	fresh, specs, err := m.spawn(newHost, old.path, sp.Context())
	if err != nil {
		return errMsg("schooner: restarting %s on %s: %v", old.path, newHost, err)
	}
	// The fresh copy must export the same procedures (same file).
	if err := sameExports(old.exports, specs, old.language); err != nil {
		m.shutdownProcess(fresh)
		return errMsg("schooner: %s on %s: %v", old.path, newHost, err)
	}
	if withState {
		if err := m.installState(fresh, state); err != nil {
			m.shutdownProcess(fresh)
			return errMsg("schooner: installing state on %s: %v", newHost, err)
		}
	}

	// Update the mapping tables: every name that referred to the old
	// process now refers to the fresh one. For a shared procedure this
	// single update serves all lines, since every line resolves shared
	// names through the one shared database.
	m.mu.Lock()
	for name, r := range ln.names {
		if r.proc == old {
			ln.names[name] = &procRef{proc: fresh, spec: r.spec}
		}
	}
	delete(ln.processes, old.addr)
	ln.processes[fresh.addr] = fresh
	m.journalAppend(&journalRecord{Op: jopUninstall, Line: ln.id, Addr: old.addr})
	m.journalAppend(&journalRecord{Op: jopInstall, Line: ln.id, Path: fresh.path,
		Host: fresh.host, Addr: fresh.addr, Specs: fresh.specText})
	delete(m.checkpoints, old.addr)
	if withState {
		// The transferred state doubles as the fresh copy's first acked
		// checkpoint: if its host dies before the next sweep, restore
		// starts from what was just installed rather than from nothing.
		ck := make(map[string][]byte, len(state))
		for _, spec := range fresh.exports {
			data, ok := stateFor(state, spec.Name)
			if !ok {
				continue
			}
			ck[spec.Name] = data
			m.journalAppend(&journalRecord{Op: jopCheckpoint, Line: ln.id,
				Addr: fresh.addr, Proc: spec.Name, State: data})
		}
		m.checkpoints[fresh.addr] = ck
	}
	m.mu.Unlock()
	trace.Count("schooner.manager.moves")
	ctx := sp.Context()
	flight.Record(flight.Event{Kind: flight.KindMigration, Component: "manager",
		Host: m.host, Line: ln.id, Trace: ctx.Trace, Span: ctx.Span, Name: req.Name, Detail: newHost})
	return &wire.Message{Kind: wire.KMoveOK, Str: fresh.addr}
}

// sameExports verifies that a respawned program exports the same
// procedures with identical signatures. Fortran names compare
// case-insensitively: moving a procedure file from a Cray (whose
// compiler upper-cases names) to a workstation (lower-cases) must not
// look like a signature change.
func sameExports(old, fresh []*uts.ProcSpec, lang Language) error {
	if len(old) != len(fresh) {
		return fmt.Errorf("export count changed: %d vs %d", len(old), len(fresh))
	}
	for i := range old {
		sameName := old[i].Name == fresh[i].Name
		if !sameName && lang == LangFortran {
			sameName = strings.EqualFold(old[i].Name, fresh[i].Name)
		}
		if !sameName || old[i].Signature() != fresh[i].Signature() {
			return fmt.Errorf("export %q changed signature", old[i].Name)
		}
	}
	return nil
}

// captureState fetches the migration state of every stateful export.
func (m *Manager) captureState(proc *remoteProc) (map[string][]byte, error) {
	conn, err := m.transport.Dial(m.host, proc.addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	state := make(map[string][]byte)
	for _, spec := range proc.exports {
		if len(spec.State) == 0 {
			continue
		}
		if err := conn.Send(&wire.Message{Kind: wire.KStateGet, Name: spec.Name}); err != nil {
			return nil, err
		}
		resp, err := recvTimeout(conn, rpcTimeout)
		if err != nil {
			return nil, err
		}
		if resp.Kind != wire.KStateOK {
			return nil, fmt.Errorf("%s", resp.Err)
		}
		state[spec.Name] = resp.Data
	}
	return state, nil
}

// installState pushes captured state into a fresh process.
func (m *Manager) installState(proc *remoteProc, state map[string][]byte) error {
	if len(state) == 0 {
		return nil
	}
	conn, err := m.transport.Dial(m.host, proc.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	for name, data := range state {
		if err := conn.Send(&wire.Message{Kind: wire.KStatePut, Name: name, Data: data}); err != nil {
			return err
		}
		resp, err := recvTimeout(conn, rpcTimeout)
		if err != nil {
			return err
		}
		if resp.Kind != wire.KStatePutOK {
			return fmt.Errorf("%s", resp.Err)
		}
	}
	return nil
}

// stateFor resolves captured state for a fresh export, tolerating the
// case-only renames Fortran compilers introduce.
func stateFor(state map[string][]byte, name string) ([]byte, bool) {
	if data, ok := state[name]; ok {
		return data, true
	}
	for n, data := range state {
		if strings.EqualFold(n, name) {
			return data, true
		}
	}
	return nil, false
}

// quitLine shuts down every procedure process in a line and removes
// the line. Shared procedures are unaffected. After a Crash the quit
// is a no-op: the dying Manager's connection-drop handlers must not
// shut down processes a recovered incarnation will re-adopt.
func (m *Manager) quitLine(id uint32) {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	ln, ok := m.lines[id]
	if ok {
		delete(m.lines, id)
		for addr := range ln.processes {
			delete(m.checkpoints, addr)
		}
		m.journalAppend(&journalRecord{Op: jopQuitLine, Line: id})
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	for _, p := range ln.processes {
		m.shutdownProcess(p)
	}
	trace.Count("schooner.manager.quits")
	flight.Record(flight.Event{Kind: flight.KindLineQuit, Component: "manager",
		Host: m.host, Line: id, Name: ln.module})
}

// RestoreLedger reports how many times each pre-failover process
// address has been restored from checkpoint. DST merges the ledgers of
// successive Manager incarnations to verify no instance is ever
// double-restored.
func (m *Manager) RestoreLedger() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.restored))
	for addr, n := range m.restored {
		out[addr] = n
	}
	return out
}

// JournalSeq reports the journal's last appended sequence number, or 0
// when the Manager runs without a journal.
func (m *Manager) JournalSeq() uint64 {
	m.mu.Lock()
	journal := m.journal
	m.mu.Unlock()
	if journal == nil {
		return 0
	}
	return journal.LastSeq()
}

// shutdownProcess sends a best-effort shutdown to a procedure process.
func (m *Manager) shutdownProcess(p *remoteProc) {
	conn, err := m.transport.Dial(m.host, p.addr)
	if err != nil {
		return // host or process already gone
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KShutdown}); err != nil {
		return
	}
	_, _ = recvTimeout(conn, rpcTimeout)
}

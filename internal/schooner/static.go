package schooner

import (
	"fmt"
	"net"
	"sync"

	"npss/internal/machine"
	"npss/internal/wire"
)

// StaticTCPTransport runs Schooner components in separate operating
// system processes connected by real TCP sockets. Unlike TCPTransport
// (whose logical-name rendezvous lives in one process's memory), the
// static transport carries real "ip:port" strings as addresses, so
// they remain meaningful across processes. Only the well-known
// endpoints (the Manager and the per-machine Servers) need static
// configuration; ephemeral listeners use their real bound address as
// their logical address. This is the transport behind the
// cmd/schooner-manager and cmd/schooner-server daemons.
type StaticTCPTransport struct {
	mu sync.Mutex
	// archs maps logical host names to architectures.
	archs map[string]*machine.Arch
	// wellKnown maps "host:port" logical names (e.g.
	// "cray-lerc:schx-server") to "ip:port" socket addresses.
	wellKnown map[string]string
	// bind maps "host:port" logical names to the local addresses this
	// process should bind when asked to listen on them.
	bind map[string]string
}

// NewStaticTCPTransport creates a static transport.
//
//	archs:     logical host -> simulated architecture
//	wellKnown: logical "host:port" -> dialable "ip:port"
//	bind:      logical "host:port" -> local "ip:port" to bind
func NewStaticTCPTransport(archs map[string]*machine.Arch, wellKnown, bind map[string]string) *StaticTCPTransport {
	t := &StaticTCPTransport{
		archs:     make(map[string]*machine.Arch, len(archs)),
		wellKnown: make(map[string]string, len(wellKnown)),
		bind:      make(map[string]string, len(bind)),
	}
	for k, v := range archs {
		t.archs[k] = v
	}
	for k, v := range wellKnown {
		t.wellKnown[k] = v
	}
	for k, v := range bind {
		t.bind[k] = v
	}
	return t
}

type staticListener struct {
	inner   net.Listener
	logical string
}

func (l *staticListener) Accept() (wire.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return wire.NewStreamConn(c, c.RemoteAddr().String()), nil
}

func (l *staticListener) Close() error { return l.inner.Close() }
func (l *staticListener) Addr() string { return l.logical }

// Listen binds a listener. A named port must appear in the bind table;
// an empty port binds an ephemeral loopback port whose real address
// becomes its logical address.
func (t *StaticTCPTransport) Listen(host, port string) (Listener, error) {
	t.mu.Lock()
	_, known := t.archs[host]
	t.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("schooner: unknown host %q", host)
	}
	if port == "" {
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		return &staticListener{inner: inner, logical: inner.Addr().String()}, nil
	}
	logical := host + ":" + port
	t.mu.Lock()
	local, ok := t.bind[logical]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("schooner: no bind address configured for %q", logical)
	}
	inner, err := net.Listen("tcp", local)
	if err != nil {
		return nil, err
	}
	return &staticListener{inner: inner, logical: logical}, nil
}

// Dial resolves well-known logical addresses through the table and
// treats anything else as a real socket address.
func (t *StaticTCPTransport) Dial(fromHost, addr string) (wire.Conn, error) {
	t.mu.Lock()
	real, ok := t.wellKnown[addr]
	t.mu.Unlock()
	if !ok {
		real = addr
	}
	c, err := net.Dial("tcp", real)
	if err != nil {
		return nil, fmt.Errorf("schooner: dialing %s (%s): %w", addr, real, err)
	}
	return wire.NewStreamConn(c, addr), nil
}

// HostArch reports a logical host's architecture.
func (t *StaticTCPTransport) HostArch(host string) (*machine.Arch, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a, ok := t.archs[host]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("schooner: unknown host %q", host)
}

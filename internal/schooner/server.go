package schooner

import (
	"fmt"
	"sync"

	"npss/internal/flight"
	"npss/internal/trace"
	"npss/internal/uts"
	"npss/internal/wire"
)

// Server is the per-machine Schooner system process. There is one
// Server per machine involved in a computation; the Manager contacts
// it on the well-known ServerPort to instantiate procedure files as
// processes on that machine.
type Server struct {
	transport Transport
	host      string
	registry  *Registry
	listener  Listener

	mu        sync.Mutex
	processes map[string]*process // keyed by process address
	stopped   bool
}

// StartServer launches a Server on the given host, serving spawn
// requests from its registry.
func StartServer(t Transport, host string, reg *Registry) (*Server, error) {
	l, err := t.Listen(host, ServerPort)
	if err != nil {
		return nil, err
	}
	s := &Server{
		transport: t,
		host:      host,
		registry:  reg,
		listener:  l,
		processes: make(map[string]*process),
	}
	go s.acceptLoop()
	return s, nil
}

// Host returns the machine the server runs on.
func (s *Server) Host() string { return s.host }

// Addr returns the server's dialable address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Stop shuts the server down along with every process it spawned.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	procs := make([]*process, 0, len(s.processes))
	for _, p := range s.processes {
		procs = append(procs, p)
	}
	s.processes = make(map[string]*process)
	s.mu.Unlock()
	s.listener.Close()
	for _, p := range procs {
		p.stop()
	}
}

// ProcessCount reports how many processes the server currently hosts.
func (s *Server) ProcessCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, p := range s.processes {
		if !p.stopped() {
			n++
		}
	}
	return n
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		go s.serve(conn)
	}
}

func (s *Server) serve(conn wire.Conn) {
	defer conn.Close()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		var resp *wire.Message
		switch m.Kind {
		case wire.KSpawn:
			resp = s.handleSpawn(m)
		case wire.KBatch:
			resp = s.handleBatch(m)
		case wire.KStatus:
			resp = &wire.Message{Kind: wire.KStatusOK,
				Data: []byte(fmt.Sprintf("schooner server on %s: %d processes\n", s.host, s.ProcessCount()))}
		case wire.KMetrics:
			resp = metricsReply()
		case wire.KSeries:
			resp = seriesReply()
		case wire.KProfile:
			resp = profileReply()
		case wire.KFlightDump:
			resp = &wire.Message{Kind: wire.KFlightDumpOK, Data: []byte(flight.DumpString())}
		case wire.KShutdown:
			resp = &wire.Message{Kind: wire.KShutdownOK}
			resp.Seq = m.Seq
			_ = conn.Send(resp)
			s.Stop()
			return
		case wire.KPing:
			resp = &wire.Message{Kind: wire.KPong}
		default:
			resp = &wire.Message{Kind: wire.KError,
				Err: fmt.Sprintf("schooner: server cannot handle %v", m.Kind)}
		}
		resp.Seq = m.Seq
		if err := conn.Send(resp); err != nil {
			return
		}
	}
}

// handleBatch fans a host-level batch out to this machine's processes:
// each sub-request is tagged with the address of a process the server
// spawned, and is dispatched to it in-memory — one wire round trip
// covers calls to any number of processes on the host. Sub-requests are
// run in envelope order (batches may touch stateful procedures), and
// the reply carries one sub-frame per sub-request in the same order.
func (s *Server) handleBatch(m *wire.Message) *wire.Message {
	// Replies are roughly request-sized; start at the envelope's size
	// to avoid growth reallocations. Sub-frames are walked in place
	// rather than split into a slice first.
	data := make([]byte, 0, len(m.Data))
	for rest := m.Data; len(rest) > 0; {
		sub, r, err := wire.SplitSub(rest)
		if err != nil {
			return &wire.Message{Kind: wire.KError, Err: err.Error()}
		}
		rest = r
		s.mu.Lock()
		p := s.processes[sub.Addr]
		s.mu.Unlock()
		var resp *wire.Message
		if p == nil {
			resp = &wire.Message{Kind: wire.KError,
				Err: fmt.Sprintf("schooner: no process at %q on %s", sub.Addr, s.host)}
		} else {
			resp = p.dispatch(sub.Msg)
		}
		resp.Seq = sub.Msg.Seq
		if data, err = wire.AppendSub(data, "", resp); err != nil {
			return &wire.Message{Kind: wire.KError, Err: err.Error()}
		}
	}
	trace.Count("schooner.server.batches")
	return &wire.Message{Kind: wire.KBatchOK, Data: data}
}

func (s *Server) handleSpawn(m *wire.Message) *wire.Message {
	// Continue the Manager's span tree: a traced StartRemote shows
	// client -> Manager -> Server -> process creation on one timeline.
	var sp *trace.Span
	if m.Trace != 0 {
		sp = trace.StartChild(trace.SpanContext{Trace: m.Trace, Span: m.Span},
			"server.spawn "+m.Name, s.host)
		defer sp.End()
	}
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		return &wire.Message{Kind: wire.KError, Err: "schooner: server stopped"}
	}
	prog, err := s.registry.Lookup(m.Name)
	if err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	p, err := startProcess(s.transport, s.host, prog)
	if err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	s.mu.Lock()
	s.processes[p.addr()] = p
	s.mu.Unlock()
	flight.Record(flight.Event{Kind: flight.KindSpawn, Component: "server",
		Host: s.host, Trace: m.Trace, Span: m.Span, Name: m.Name})
	// Report the new process address together with its export
	// specification file (adjusted for the host compiler's case
	// convention) so the Manager can populate its mapping tables.
	specText := s.exportSpecText(p)
	return &wire.Message{Kind: wire.KSpawnOK, Str: p.addr(), Data: []byte(specText)}
}

// exportSpecText renders the process's export specs as the Manager
// will see them. On a machine whose Fortran compiler upper-cases
// procedure names (the Cray), the exported names of Fortran procedures
// appear in upper case — the naming inconsistency the Manager's
// synonym tables exist to absorb.
func (s *Server) exportSpecText(p *process) string {
	header := ""
	if p.program.Language == LangFortran {
		// A UTS comment the Manager reads to learn the naming
		// convention; older parsers skip it harmlessly.
		header = "#language fortran\n"
	}
	f := &uts.SpecFile{}
	for _, bp := range p.instance.Procs() {
		spec := bp.Spec
		if p.program.Language == LangFortran && p.arch.FortranUpperCase {
			up := spec.Clone(true)
			up.Name = upperName(spec.Name)
			spec = up
		}
		f.Procs = append(f.Procs, spec)
	}
	return header + f.String()
}

func upperName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

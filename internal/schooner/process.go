package schooner

import (
	"fmt"
	"sync"
	"time"

	"npss/internal/flight"
	"npss/internal/machine"
	"npss/internal/trace"
	"npss/internal/tseries"
	"npss/internal/uts"
	"npss/internal/wire"
)

// ErrProcessTerminated is the exact error text a stopped procedure
// process answers with; the client library treats it (and transport
// failures) as a stale binding and re-asks the Manager. Application
// errors are never matched against it, so a procedure whose own error
// mentions "terminated" cannot trigger a spurious retry.
const ErrProcessTerminated = "schooner: procedure process terminated"

// process is a running instantiation of a Program on some host: the
// Schooner runtime's procedure process. It owns a listener, serves
// KCall/KStateGet/KStatePut/KShutdown, and marshals all data through
// the host architecture's native representation so that heterogeneity
// (precision, range, byte order) is exercised on every call.
type process struct {
	host     string
	arch     *machine.Arch
	program  *Program
	instance *Instance
	listener Listener

	mu sync.Mutex // serializes calls within this instance
	// sigCache caches parsed import signatures per procedure so the
	// per-call signature text is parsed once.
	sigCache map[string]*uts.ProcSpec

	stopOnce sync.Once
	done     chan struct{}
}

// startProcess instantiates a program on a host and begins serving.
func startProcess(t Transport, host string, prog *Program) (*process, error) {
	arch, err := t.HostArch(host)
	if err != nil {
		return nil, err
	}
	inst, err := prog.Build()
	if err != nil {
		return nil, fmt.Errorf("schooner: building %q: %w", prog.Path, err)
	}
	l, err := t.Listen(host, "")
	if err != nil {
		return nil, err
	}
	p := &process{
		host:     host,
		arch:     arch,
		program:  prog,
		instance: inst,
		listener: l,
		sigCache: make(map[string]*uts.ProcSpec),
		done:     make(chan struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// addr returns the process's dialable address.
func (p *process) addr() string { return p.listener.Addr() }

// stop terminates the process.
func (p *process) stop() {
	p.stopOnce.Do(func() {
		close(p.done)
		p.listener.Close()
	})
}

func (p *process) stopped() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

func (p *process) acceptLoop() {
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return
		}
		go p.serve(conn)
	}
}

// serve reads requests off one connection and dispatches each in its
// own goroutine, so a pipelined caller's in-flight requests overlap and
// replies return in completion order (the caller matches them by Seq).
// Procedure bodies still serialize on p.mu; the concurrency covers the
// marshaling halves and the reply ordering. KShutdown stays in the read
// loop because it ends the conversation.
func (p *process) serve(conn wire.Conn) {
	defer conn.Close()
	var sendMu sync.Mutex
	reply := func(req, resp *wire.Message) {
		resp.Seq = req.Seq
		// A failed reply means the connection died; the caller's
		// receive will fail and recovery happens on its side.
		sendMu.Lock()
		_ = conn.Send(resp)
		sendMu.Unlock()
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		if p.stopped() {
			reply(m, &wire.Message{Kind: wire.KError, Err: ErrProcessTerminated})
			return
		}
		if m.Kind == wire.KShutdown {
			reply(m, &wire.Message{Kind: wire.KShutdownOK})
			p.stop()
			return
		}
		go func(m *wire.Message) { reply(m, p.dispatch(m)) }(m)
	}
}

// dispatch computes the reply for one request. It is the entry point
// both for requests read off a connection and for batch sub-requests a
// Server fans out in-memory; the caller assigns the reply Seq.
func (p *process) dispatch(m *wire.Message) *wire.Message {
	if p.stopped() {
		return &wire.Message{Kind: wire.KError, Err: ErrProcessTerminated}
	}
	switch m.Kind {
	case wire.KCall:
		return p.handleCall(m)
	case wire.KStateGet:
		return p.handleStateGet(m)
	case wire.KStatePut:
		return p.handleStatePut(m)
	case wire.KBatch:
		return p.dispatchBatch(m)
	case wire.KPing:
		return &wire.Message{Kind: wire.KPong}
	case wire.KMetrics:
		return metricsReply()
	case wire.KSeries:
		return seriesReply()
	case wire.KProfile:
		return profileReply()
	case wire.KFlightDump:
		return &wire.Message{Kind: wire.KFlightDumpOK, Data: []byte(flight.DumpString())}
	default:
		return &wire.Message{Kind: wire.KError,
			Err: fmt.Sprintf("schooner: procedure process cannot handle %v", m.Kind)}
	}
}

// dispatchBatch runs a batch envelope's sub-requests in order — batches
// may carry calls to stateful procedures, so sub-request order is
// execution order — and returns one KBatchOK with a reply sub-frame per
// sub-request. Address tags are ignored: a batch sent directly to a
// process is already at its destination.
func (p *process) dispatchBatch(env *wire.Message) *wire.Message {
	// Replies are roughly request-sized; start at the envelope's size
	// to avoid growth reallocations. Sub-frames are walked in place
	// rather than split into a slice first.
	data := make([]byte, 0, len(env.Data))
	for rest := env.Data; len(rest) > 0; {
		sub, r, err := wire.SplitSub(rest)
		if err != nil {
			return &wire.Message{Kind: wire.KError, Err: err.Error()}
		}
		rest = r
		resp := p.dispatch(sub.Msg)
		resp.Seq = sub.Msg.Seq
		if data, err = wire.AppendSub(data, "", resp); err != nil {
			return &wire.Message{Kind: wire.KError, Err: err.Error()}
		}
	}
	trace.Count("schooner.proc.batches")
	return &wire.Message{Kind: wire.KBatchOK, Data: data}
}

// importSpec resolves the caller's import signature for a procedure:
// either the cached parse or the signature text carried on the call.
func (p *process) importSpec(name, sig string) (*uts.ProcSpec, error) {
	key := name + "\x00" + sig
	p.mu.Lock()
	cached, ok := p.sigCache[key]
	p.mu.Unlock()
	if ok {
		return cached, nil
	}
	if sig == "" {
		return nil, fmt.Errorf("schooner: call to %q carries no signature", name)
	}
	spec, err := uts.ParseProc("import " + name + " " + sig)
	if err != nil {
		return nil, fmt.Errorf("schooner: bad signature on call to %q: %w", name, err)
	}
	p.mu.Lock()
	p.sigCache[key] = spec
	p.mu.Unlock()
	return spec, nil
}

func (p *process) handleCall(m *wire.Message) *wire.Message {
	// Remote half of the call's span tree: a traced request parents a
	// dispatch span on this host, with children for the decode half of
	// the conversion, the procedure body, and the encode half.
	var dispatch *trace.Span
	if m.Trace != 0 {
		dispatch = trace.StartChild(trace.SpanContext{Trace: m.Trace, Span: m.Span},
			"dispatch "+m.Name, p.host)
		defer dispatch.End()
	}
	flight.Record(flight.Event{Kind: flight.KindDispatch, Component: "process",
		Host: p.host, Line: m.Line, Trace: m.Trace, Span: m.Span, Name: m.Name})
	bp := p.instance.Find(m.Name, p.program.Language)
	if bp == nil {
		return &wire.Message{Kind: wire.KError,
			Err: fmt.Sprintf("schooner: no procedure %q in %s", m.Name, p.program.Path)}
	}
	var decode *trace.Span
	if dispatch != nil {
		decode = dispatch.Child("decode", p.host)
	}
	imp, err := p.importSpec(m.Name, m.Str)
	if err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	// The import may be a subset of the export; re-verify here (the
	// Manager checked at bind time, but a direct caller could lie).
	if err := uts.CheckImport(imp, bp.Spec); err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	sent, err := uts.DecodeParams(m.Data, imp.InParams())
	if err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	// Assemble the full in-parameter list of the export: parameters
	// omitted by a subset import take their zero values.
	byName := make(map[string]uts.Value, len(sent))
	for i, prm := range imp.InParams() {
		byName[prm.Name] = sent[i]
	}
	var in []uts.Value
	for _, prm := range bp.Spec.InParams() {
		if v, ok := byName[prm.Name]; ok {
			in = append(in, v)
		} else {
			in = append(in, uts.Zero(prm.Type))
		}
	}
	// Convert incoming values into this machine's native formats: the
	// UTS-to-native half of the conversion, with its range errors.
	for i := range in {
		nv, err := p.arch.NativeRoundTrip(in[i])
		if err != nil {
			return &wire.Message{Kind: wire.KError,
				Err: fmt.Sprintf("schooner: converting parameter to %s native format: %v", p.arch.Name, err)}
		}
		in[i] = nv
	}
	decode.End()

	// One line is sequential; distinct lines may call concurrently
	// into a shared procedure, so serialize at the instance.
	var body *trace.Span
	var bodyStart time.Time
	enabled := trace.Enabled()
	if enabled {
		if dispatch != nil {
			body = dispatch.Child("proc "+m.Name, p.host)
		}
		bodyStart = time.Now()
	}
	p.mu.Lock()
	out, err := bp.Fn(in)
	p.mu.Unlock()
	if enabled {
		d := time.Since(bodyStart)
		body.End()
		trace.Observe(trace.LKey("schooner.proc.call", trace.Label{Key: "proc", Value: m.Name}), d)
		trace.Observe(trace.LKey("schooner.proc.call", trace.Label{Key: "host", Value: p.host}), d)
		if tseries.Enabled() {
			ctx := body.Context()
			if ctx.Trace == 0 {
				ctx = trace.SpanContext{Trace: m.Trace, Span: m.Span}
			}
			tseries.Observe(trace.LKey("schooner.proc.call", trace.Label{Key: "proc", Value: m.Name}), d, ctx.Trace, ctx.Span)
			tseries.Observe(trace.LKey("schooner.proc.call", trace.Label{Key: "host", Value: p.host}), d, ctx.Trace, ctx.Span)
		}
	}
	trace.Count("schooner.proc.calls")
	if err != nil {
		return &wire.Message{Kind: wire.KError,
			Err: fmt.Sprintf("schooner: %s: %v", m.Name, err)}
	}
	exportOut := bp.Spec.OutParams()
	if len(out) != len(exportOut) {
		return &wire.Message{Kind: wire.KError,
			Err: fmt.Sprintf("schooner: %s returned %d results, export declares %d", m.Name, len(out), len(exportOut))}
	}
	// Native-to-UTS conversion of results, then keep only the
	// out-parameters the import asked for, in import order.
	var encode *trace.Span
	if dispatch != nil {
		encode = dispatch.Child("encode", p.host)
	}
	outByName := make(map[string]uts.Value, len(out))
	for i, prm := range exportOut {
		nv, err := p.arch.NativeRoundTrip(out[i])
		if err != nil {
			return &wire.Message{Kind: wire.KError,
				Err: fmt.Sprintf("schooner: converting result %q from %s native format: %v", prm.Name, p.arch.Name, err)}
		}
		outByName[prm.Name] = nv
	}
	impOut := imp.OutParams()
	results := make([]uts.Value, len(impOut))
	for i, prm := range impOut {
		results[i] = outByName[prm.Name]
	}
	data, err := uts.EncodeParams(nil, impOut, results)
	if err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	encode.End()
	return &wire.Message{Kind: wire.KReply, Data: data}
}

// stateFor finds the bound procedure by name and checks it supports
// state transfer.
func (p *process) stateFor(name string) (*BoundProc, error) {
	bp := p.instance.Find(name, p.program.Language)
	if bp == nil {
		return nil, fmt.Errorf("schooner: no procedure %q in %s", name, p.program.Path)
	}
	if bp.GetState == nil {
		return nil, fmt.Errorf("schooner: procedure %q is stateless (no state clause)", name)
	}
	return bp, nil
}

func (p *process) handleStateGet(m *wire.Message) *wire.Message {
	bp, err := p.stateFor(m.Name)
	if err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	p.mu.Lock()
	vals, err := bp.GetState()
	p.mu.Unlock()
	if err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	params := stateParams(bp.Spec)
	data, err := uts.EncodeParams(nil, params, vals)
	if err != nil {
		return &wire.Message{Kind: wire.KError,
			Err: fmt.Sprintf("schooner: state of %q does not match its state clause: %v", m.Name, err)}
	}
	return &wire.Message{Kind: wire.KStateOK, Data: data}
}

func (p *process) handleStatePut(m *wire.Message) *wire.Message {
	bp, err := p.stateFor(m.Name)
	if err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	vals, err := uts.DecodeParams(m.Data, stateParams(bp.Spec))
	if err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	p.mu.Lock()
	err = bp.SetState(vals)
	p.mu.Unlock()
	if err != nil {
		return &wire.Message{Kind: wire.KError, Err: err.Error()}
	}
	return &wire.Message{Kind: wire.KStatePutOK}
}

// stateParams views a spec's state clause as a parameter list for
// marshaling.
func stateParams(s *uts.ProcSpec) []uts.Param {
	params := make([]uts.Param, len(s.State))
	for i, f := range s.State {
		params[i] = uts.Param{Name: f.Name, Mode: uts.Var, Type: f.Type}
	}
	return params
}

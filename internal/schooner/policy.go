package schooner

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"npss/internal/wire"
)

// CallPolicy bounds remote procedure calls so a Line.Call can never
// hang on a lost message, a dead process, or a partitioned machine.
// Transient wire failures (transport errors, timeouts, terminated
// processes) are retried with exponential backoff after re-asking the
// Manager for the procedure's current location; application errors
// returned by the procedure itself are surfaced immediately and never
// retried.
type CallPolicy struct {
	// Timeout is the per-attempt deadline covering one send/receive
	// round trip. Zero selects DefaultCallTimeout; negative disables
	// the deadline (the pre-fault-tolerance behavior).
	Timeout time.Duration
	// MaxRetries is the number of additional attempts after the first
	// for transient failures. Zero selects DefaultMaxRetries; negative
	// disables retrying.
	MaxRetries int
	// Backoff is the base delay before the first retry; each further
	// retry doubles it. Zero selects DefaultBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay. Zero selects
	// DefaultMaxBackoff.
	MaxBackoff time.Duration
	// NoPipeline routes every call attempt over a private leased
	// connection instead of the binding's shared pipelined connection —
	// the fallback for procedure servers that serve a connection
	// strictly sequentially and cannot demultiplex concurrent requests.
	NoPipeline bool
}

// Defaults for zero CallPolicy fields: bounded, so every call
// terminates even with no policy configured anywhere.
const (
	DefaultCallTimeout = 3 * time.Second
	DefaultMaxRetries  = 2
	DefaultBackoff     = 2 * time.Millisecond
	DefaultMaxBackoff  = 250 * time.Millisecond
)

// withDefaults fills zero fields with the default bounds.
func (p CallPolicy) withDefaults() CallPolicy {
	if p.Timeout == 0 {
		p.Timeout = DefaultCallTimeout
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = DefaultMaxRetries
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.Backoff == 0 {
		p.Backoff = DefaultBackoff
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	return p
}

// backoffJitter is the client's own randomness source: retry delays
// are jittered so colliding clients do not retry in lockstep.
var backoffJitter = struct {
	mu  sync.Mutex
	rng *rand.Rand
}{rng: rand.New(rand.NewSource(time.Now().UnixNano()))}

// SetRetrySeed re-seeds the retry jitter source. Experiments that
// promise reproducibility (the chaos harness, the fault tests) call
// this next to netsim.SetFaultSeed, so a seed pair fully determines
// both the fault draws and the retry timing.
func SetRetrySeed(seed int64) {
	backoffJitter.mu.Lock()
	backoffJitter.rng = rand.New(rand.NewSource(seed))
	backoffJitter.mu.Unlock()
}

// backoffFor computes the jittered delay before retry number n
// (0-based): half the exponential step plus a random half.
func (p CallPolicy) backoffFor(n int) time.Duration {
	d := p.Backoff << uint(n)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	backoffJitter.mu.Lock()
	f := backoffJitter.rng.Float64()
	backoffJitter.mu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// timeoutError marks a receive that exceeded its deadline, so call
// sites can count timeouts separately from other transient failures.
type timeoutError struct {
	peer string
	d    time.Duration
}

func (e *timeoutError) Error() string {
	return fmt.Sprintf("schooner: receive from %s timed out after %v", e.peer, e.d)
}

// recvTimeout receives one message with a deadline on the package
// clock. On timeout the connection is closed (unblocking the pending
// receive) and a *timeoutError is returned; the caller must treat the
// connection as dead. A non-positive timeout blocks indefinitely.
func recvTimeout(conn wire.Conn, timeout time.Duration) (*wire.Message, error) {
	if timeout <= 0 {
		return conn.Recv()
	}
	type result struct {
		m   *wire.Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := conn.Recv()
		ch <- result{m, err}
	}()
	timer := clk().NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.m, r.err
	case <-timer.C:
		conn.Close()
		return nil, &timeoutError{peer: conn.RemoteLabel(), d: timeout}
	}
}

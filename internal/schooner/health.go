package schooner

import (
	"sort"
	"time"

	"npss/internal/flight"
	"npss/internal/logx"
	"npss/internal/trace"
	"npss/internal/wire"
)

// HealthPolicy configures the Manager's health monitor: how often
// every machine's Server is heartbeated, how many consecutive missed
// heartbeats declare the machine dead, and the deadline on each probe.
type HealthPolicy struct {
	// Interval between heartbeat sweeps (default 50ms).
	Interval time.Duration
	// Threshold is the number of consecutive probe failures that mark
	// a machine dead and trigger failover (default 2).
	Threshold int
	// PingTimeout bounds one probe's round trip (default 1s).
	PingTimeout time.Duration
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.Interval == 0 {
		p.Interval = 50 * time.Millisecond
	}
	if p.Threshold <= 0 {
		p.Threshold = 2
	}
	if p.PingTimeout == 0 {
		p.PingTimeout = time.Second
	}
	return p
}

// hostHealth is the Manager's record of one machine's liveness.
type hostHealth struct {
	fails int  // consecutive failed probes
	dead  bool // declared dead (threshold reached)
}

// StartHealth begins heartbeating every machine's Server and, when a
// machine is declared dead, automatically re-homes its procedure
// processes on an alternate up machine and repoints the name database
// — the same migration machinery as Move, so clients' lazy
// stale-cache recovery finds the new home transparently. Stateless
// procedures restart from their initial state; stateful ones (those
// with a state clause) are restored from their last acked checkpoint
// when the Manager runs a checkpoint sweep, and are skipped — loudly —
// when no complete checkpoint exists. Health monitoring is off by
// default; call StartHealth to opt in, StopHealth (or Stop) to end it.
func (m *Manager) StartHealth(p HealthPolicy) {
	p = p.withDefaults()
	m.mu.Lock()
	if m.stopped || m.hbStop != nil {
		m.mu.Unlock()
		return
	}
	m.hbPol = p
	m.health = make(map[string]*hostHealth)
	m.hbStop = make(chan struct{})
	m.hbDone = make(chan struct{})
	stop, done := m.hbStop, m.hbDone
	m.mu.Unlock()
	go m.healthLoop(p, stop, done)
}

// StopHealth halts the health monitor, waiting for an in-flight sweep
// to finish.
func (m *Manager) StopHealth() {
	m.mu.Lock()
	stop, done := m.hbStop, m.hbDone
	m.hbStop, m.hbDone = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// HostHealth reports the monitor's current view: machine -> alive.
// Machines not yet probed are absent. Returns nil when the monitor is
// not running.
func (m *Manager) HostHealth() map[string]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.health == nil {
		return nil
	}
	out := make(map[string]bool, len(m.health))
	for h, st := range m.health {
		out[h] = !st.dead
	}
	return out
}

func (m *Manager) healthLoop(p HealthPolicy, stop, done chan struct{}) {
	defer close(done)
	// The sweep ticker runs on the package clock, so with a virtual
	// clock installed the prober advances purely in virtual time.
	ticker := clk().NewTicker(p.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			m.healthSweep(p)
		}
	}
}

// healthSweep probes every candidate machine once and reacts to
// liveness transitions.
func (m *Manager) healthSweep(p HealthPolicy) {
	for _, host := range m.candidateHosts() {
		ok := m.pingServer(host, p.PingTimeout)
		trace.Count("schooner.manager.heartbeats")
		m.mu.Lock()
		if m.health == nil {
			m.mu.Unlock()
			return
		}
		st := m.health[host]
		if st == nil {
			st = &hostHealth{}
			m.health[host] = st
		}
		var died bool
		if ok {
			if st.dead {
				trace.Count("schooner.manager.hostup")
				flight.Record(flight.Event{Kind: flight.KindHealthUp, Component: "manager",
					Host: m.host, Name: host})
				logx.For("manager", m.host).Info("host back up", "machine", host)
			}
			st.fails, st.dead = 0, false
		} else {
			st.fails++
			if st.fails >= p.Threshold && !st.dead {
				st.dead = true
				died = true
			}
		}
		m.mu.Unlock()
		if died {
			trace.Count("schooner.manager.hostdown")
			flight.Record(flight.Event{Kind: flight.KindHealthDown, Component: "manager",
				Host: m.host, Name: host})
			logx.For("manager", m.host).Warn("host declared down", "machine", host, "missedProbes", p.Threshold)
			m.failoverHost(host)
		}
	}
}

// candidateHosts is the machine universe to monitor: every host the
// transport knows about, or — for transports without a host list —
// every host currently running a procedure process.
func (m *Manager) candidateHosts() []string {
	if hl, ok := m.transport.(HostLister); ok {
		return hl.Hosts()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[string]bool)
	for _, ln := range m.lines {
		for _, pr := range ln.processes {
			seen[pr.host] = true
		}
	}
	for _, pr := range m.shared.processes {
		seen[pr.host] = true
	}
	hosts := make([]string, 0, len(seen))
	for h := range seen {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// pingServer probes one machine's Server with a bounded KPing round
// trip.
func (m *Manager) pingServer(host string, timeout time.Duration) bool {
	conn, err := m.transport.Dial(m.host, host+":"+ServerPort)
	if err != nil {
		return false
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KPing}); err != nil {
		return false
	}
	resp, err := recvTimeout(conn, timeout)
	return err == nil && resp.Kind == wire.KPong
}

// aliveHosts lists machines currently believed up, excluding one,
// sorted for deterministic failover placement.
func (m *Manager) aliveHosts(exclude string) []string {
	dead := make(map[string]bool)
	m.mu.Lock()
	for h, st := range m.health {
		if st.dead {
			dead[h] = true
		}
	}
	m.mu.Unlock()
	var out []string
	for _, h := range m.candidateHosts() {
		if h != exclude && !dead[h] {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// statelessProc reports whether every export of a process is
// stateless (no state clause) — the property that makes
// shutdown-here/start-anew-there recovery correct.
func statelessProc(p *remoteProc) bool {
	for _, spec := range p.exports {
		if len(spec.State) > 0 {
			return false
		}
	}
	return true
}

// victim is one procedure process that needs re-homing, paired with
// the line whose database maps it.
type victim struct {
	ln   *line
	proc *remoteProc
}

// failoverHost re-homes every procedure process of a dead machine on
// an alternate up machine and repoints the name database. Stateless
// processes restart from their initial state; stateful ones are
// restored from their last acked checkpoint, or — when no complete
// checkpoint exists — left in place, with the skip surfaced to the
// flight recorder and the structured log so a post-mortem can name the
// lost procedure.
func (m *Manager) failoverHost(deadHost string) {
	// Failover is Manager-initiated, so it roots its own trace; the
	// affected clients' later rebinds annotate their own call spans.
	var sp *trace.Span
	if trace.Enabled() {
		sp = trace.StartSpan("failover "+deadHost, m.host)
		defer sp.End()
	}
	var victims []victim
	m.mu.Lock()
	for _, ln := range m.lines {
		for _, pr := range ln.processes {
			if pr.host == deadHost {
				victims = append(victims, victim{ln, pr})
			}
		}
	}
	for _, pr := range m.shared.processes {
		if pr.host == deadHost {
			victims = append(victims, victim{m.shared, pr})
		}
	}
	m.mu.Unlock()

	for _, v := range victims {
		m.failoverVictim(v, deadHost, sp)
	}
}

// failoverVictim re-homes one procedure process. For a stateful victim
// it first resolves the last acked checkpoint; without one the victim
// is skipped (the lost state cannot be reconstructed). Placement tries
// every alive machine except exclude, in sorted order. Reports whether
// the victim found a new home.
func (m *Manager) failoverVictim(v victim, exclude string, sp *trace.Span) bool {
	var state map[string][]byte
	if !statelessProc(v.proc) {
		state = m.checkpointFor(v.proc)
		if state == nil {
			trace.Count("schooner.manager.failover_skipped_stateful")
			ctx := sp.Context()
			flight.Record(flight.Event{Kind: flight.KindFailoverSkip, Component: "manager",
				Host: m.host, Line: v.ln.id, Trace: ctx.Trace, Span: ctx.Span,
				Name: v.proc.path, Detail: v.proc.host})
			logx.For("manager", m.host).Warn("stateful procedure lost with its host: no acked checkpoint to restore from",
				append([]any{"proc", v.proc.path, "host", v.proc.host, "line", v.ln.id}, logx.Span(ctx)...)...)
			return false
		}
	}
	for _, target := range m.aliveHosts(exclude) {
		fresh, specs, err := m.spawn(target, v.proc.path, sp.Context())
		if err != nil {
			continue // try the next machine
		}
		if err := sameExports(v.proc.exports, specs, v.proc.language); err != nil {
			m.shutdownProcess(fresh)
			continue
		}
		if state != nil {
			if err := m.installState(fresh, state); err != nil {
				// The target died (or mangled the transfer) between
				// spawn and state install; the next machine gets a
				// fresh spawn and a fresh install.
				m.shutdownProcess(fresh)
				trace.Count("schooner.manager.restore_failures")
				logx.For("manager", m.host).Warn("state restore failed, trying next machine",
					"proc", v.proc.path, "target", target, "err", err)
				continue
			}
		}
		// Swap under lock, verifying the line and process are
		// still installed (a concurrent Move or quit wins).
		m.mu.Lock()
		lineLive := v.ln == m.shared || m.lines[v.ln.id] == v.ln
		if m.stopped || !lineLive || v.ln.processes[v.proc.addr] != v.proc {
			m.mu.Unlock()
			m.shutdownProcess(fresh)
			return false
		}
		for name, r := range v.ln.names {
			if r.proc == v.proc {
				v.ln.names[name] = &procRef{proc: fresh, spec: r.spec}
			}
		}
		delete(v.ln.processes, v.proc.addr)
		v.ln.processes[fresh.addr] = fresh
		m.journalAppend(&journalRecord{Op: jopUninstall, Line: v.ln.id, Addr: v.proc.addr})
		m.journalAppend(&journalRecord{Op: jopInstall, Line: v.ln.id, Path: fresh.path,
			Host: fresh.host, Addr: fresh.addr, Specs: fresh.specText})
		delete(m.checkpoints, v.proc.addr)
		if state != nil {
			// The restored state is the fresh copy's first acked
			// checkpoint, so an immediate second crash restores from
			// here rather than finding nothing.
			ck := make(map[string][]byte, len(state))
			for _, spec := range fresh.exports {
				data, ok := stateFor(state, spec.Name)
				if !ok {
					continue
				}
				ck[spec.Name] = data
				m.journalAppend(&journalRecord{Op: jopCheckpoint, Line: v.ln.id,
					Addr: fresh.addr, Proc: spec.Name, State: data})
			}
			m.checkpoints[fresh.addr] = ck
			m.restored[v.proc.addr]++
		}
		m.mu.Unlock()
		// Best-effort shutdown of the original (usually
		// unreachable — the machine is dead).
		m.shutdownProcess(v.proc)
		trace.Count("schooner.manager.failovers")
		ctx := sp.Context()
		flight.Record(flight.Event{Kind: flight.KindFailover, Component: "manager",
			Host: m.host, Line: v.ln.id, Trace: ctx.Trace, Span: ctx.Span,
			Name: v.proc.path, Detail: target})
		logx.For("manager", m.host).Info("failover",
			append([]any{"proc", v.proc.path, "from", v.proc.host, "to", target, "line", v.ln.id},
				logx.Span(ctx)...)...)
		if state != nil {
			trace.Count("schooner.manager.failover_restored_stateful")
			flight.Record(flight.Event{Kind: flight.KindStateRestore, Component: "manager",
				Host: m.host, Line: v.ln.id, Trace: ctx.Trace, Span: ctx.Span,
				Name: v.proc.path, Detail: target})
			logx.For("manager", m.host).Info("stateful procedure restored from checkpoint",
				"proc", v.proc.path, "from", v.proc.host, "to", target, "line", v.ln.id)
		}
		if sp != nil {
			sp.Annotate(v.proc.path, v.proc.host+" -> "+target)
			trace.Count(trace.LKey("schooner.manager.failovers", trace.Label{Key: "host", Value: v.proc.host}))
		}
		return true
	}
	return false
}

package schooner

import (
	"strings"
	"sync"
	"testing"
	"time"

	"npss/internal/trace"
	"npss/internal/uts"
)

// withSpans installs a fresh span recorder and a fresh metric set
// scoped to the test, so traced-runtime tests neither see nor leak
// global counters.
func withSpans(t *testing.T) *trace.Recorder {
	t.Helper()
	prev := trace.Swap(trace.NewSet())
	rec := trace.NewRecorder()
	trace.SetRecorder(rec)
	t.Cleanup(func() {
		trace.SetRecorder(nil)
		trace.Swap(prev)
	})
	return rec
}

// spansByName indexes recorded spans, keeping every span per name.
func spansByName(rec *trace.Recorder) map[string][]trace.SpanRecord {
	out := make(map[string][]trace.SpanRecord)
	for _, s := range rec.Spans() {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

// TestSpanPropagationAcrossHosts pins the tentpole property: one
// traced Call produces spans on both the client machine and the
// procedure's machine, all sharing the root's trace id, with the
// remote dispatch parented to the client's attempt.
func TestSpanPropagationAcrossHosts(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))

	rec := withSpans(t)
	if out, err := ln.Call("add", uts.DoubleVal(2), uts.DoubleVal(3)); err != nil || out[0].F != 5 {
		t.Fatalf("call = %v, %v", out, err)
	}

	by := spansByName(rec)
	root := by["call add"]
	att := by["attempt add"]
	disp := by["dispatch add"]
	if len(root) != 1 || len(att) != 1 || len(disp) != 1 {
		t.Fatalf("spans: call=%d attempt=%d dispatch=%d, want 1 each", len(root), len(att), len(disp))
	}
	if root[0].Host != "avs-sparc" || disp[0].Host != "sgi-lerc" {
		t.Errorf("span hosts: call on %q, dispatch on %q", root[0].Host, disp[0].Host)
	}
	tr := root[0].Trace
	for name, ss := range by {
		for _, s := range ss {
			if s.Trace != tr {
				t.Errorf("span %q trace %d, want root's %d", name, s.Trace, tr)
			}
		}
	}
	if att[0].Parent != root[0].ID {
		t.Errorf("attempt parent %d, want call span %d", att[0].Parent, root[0].ID)
	}
	if disp[0].Parent != att[0].ID {
		t.Errorf("dispatch parent %d, want attempt span %d", disp[0].Parent, att[0].ID)
	}
	// The remote side breaks the dispatch into decode/proc/encode
	// children on the procedure's machine.
	for _, child := range []string{"decode", "proc add", "encode"} {
		ss := by[child]
		if len(ss) != 1 || ss[0].Parent != disp[0].ID || ss[0].Host != "sgi-lerc" {
			t.Errorf("child %q = %+v, want one span under dispatch on sgi-lerc", child, ss)
		}
	}
	// Labeled latency histograms accompany the spans.
	if h := trace.GlobalHistogram("schooner.client.call{proc=add}"); h == nil || h.Count() != 1 {
		t.Error("per-procedure client latency histogram missing")
	}
	if h := trace.GlobalHistogram("schooner.proc.call{host=sgi-lerc}"); h == nil || h.Count() != 1 {
		t.Error("per-host procedure latency histogram missing")
	}
}

// TestRetryKeepsOneTraceID pins the annotation contract under a stale
// binding: a Move behind the client's back forces the next call
// through a failed attempt and a rebind, and every attempt stays in
// the one trace rooted at the call span.
func TestRetryKeepsOneTraceID(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
		t.Fatal(err)
	}
	// Move the procedure: the client's cached binding is now stale.
	if err := ln.Move("add", "rs6000", false); err != nil {
		t.Fatal(err)
	}

	rec := withSpans(t)
	out, err := ln.Call("add", uts.DoubleVal(20), uts.DoubleVal(22))
	if err != nil || out[0].F != 42 {
		t.Fatalf("call after move = %v, %v", out, err)
	}

	by := spansByName(rec)
	roots := by["call add"]
	atts := by["attempt add"]
	if len(roots) != 1 {
		t.Fatalf("call spans = %d, want 1", len(roots))
	}
	if len(atts) < 2 {
		t.Fatalf("attempt spans = %d, want >= 2 (stale attempt + rebound attempt)", len(atts))
	}
	for _, a := range atts {
		if a.Trace != roots[0].Trace {
			t.Errorf("attempt trace %d, want the one call trace %d", a.Trace, roots[0].Trace)
		}
		if a.Parent != roots[0].ID {
			t.Errorf("attempt parent %d, want original call span %d", a.Parent, roots[0].ID)
		}
	}
	// The successful dispatch ran on the new machine, same trace.
	disp := by["dispatch add"]
	if len(disp) == 0 || disp[len(disp)-1].Host != "rs6000" || disp[len(disp)-1].Trace != roots[0].Trace {
		t.Errorf("dispatch spans = %+v, want final dispatch on rs6000 in the call's trace", disp)
	}
	// The root records the recovery: a rebind annotation naming the
	// address change.
	var sawRebind bool
	for _, n := range roots[0].Notes {
		if n.Key == "rebind" {
			sawRebind = true
		}
	}
	if !sawRebind {
		t.Errorf("call span notes %+v lack a rebind annotation", roots[0].Notes)
	}
}

// TestFailoverSpanLinkage crashes a machine under health monitoring
// and checks the trace story: the Manager's failover roots its own
// span (it is Manager-initiated, not part of any call), while the
// recovering call's attempts — including the one that lands on the
// failover target — all stay parented to the original call span.
func TestFailoverSpanLinkage(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	SetRetrySeed(1993)
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
		t.Fatal(err)
	}

	rec := withSpans(t)
	d.mgr.StartHealth(HealthPolicy{
		Interval:    5 * time.Millisecond,
		Threshold:   2,
		PingTimeout: 50 * time.Millisecond,
	})
	d.net.SetHostDown("sgi-lerc", true)
	ln.SetCallPolicy(CallPolicy{
		Timeout:    100 * time.Millisecond,
		MaxRetries: 30,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	out, err := ln.Call("add", uts.DoubleVal(20), uts.DoubleVal(22))
	if err != nil || out[0].F != 42 {
		t.Fatalf("call did not recover through failover: %v, %v", out, err)
	}
	if trace.Get("schooner.manager.failovers{host=sgi-lerc}") == 0 {
		t.Error("labeled failover counter not incremented")
	}

	by := spansByName(rec)
	roots := by["call add"]
	if len(roots) != 1 {
		t.Fatalf("call spans = %d, want 1", len(roots))
	}
	for _, a := range by["attempt add"] {
		if a.Trace != roots[0].Trace || a.Parent != roots[0].ID {
			t.Errorf("attempt %+v not linked to the original call span", a)
		}
	}
	fo := by["failover sgi-lerc"]
	if len(fo) == 0 {
		t.Fatal("no failover span recorded")
	}
	if fo[0].Trace == roots[0].Trace {
		t.Error("failover span joined the call's trace; it must root its own")
	}
	if fo[0].Parent != 0 {
		t.Errorf("failover span parent = %d, want root", fo[0].Parent)
	}
	var annotated bool
	for _, n := range fo[0].Notes {
		if n.Key == "/npss/adder" && strings.HasPrefix(n.Value, "sgi-lerc -> ") {
			annotated = true
		}
	}
	if !annotated {
		t.Errorf("failover span notes %+v lack the per-process migration", fo[0].Notes)
	}
}

// TestConcurrentTracedGo drives overlapping traced async calls from
// several goroutines; under -race this pins the recorder's and the
// span tree's thread-safety on the Line.Go path.
func TestConcurrentTracedGo(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))

	rec := withSpans(t)
	const workers, calls = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				p := ln.Go("add", uts.DoubleVal(float64(w)), uts.DoubleVal(float64(i)))
				out, err := p.Wait()
				if err != nil {
					t.Errorf("worker %d call %d: %v", w, i, err)
					return
				}
				if out[0].F != float64(w+i) {
					t.Errorf("worker %d call %d = %g", w, i, out[0].F)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	by := spansByName(rec)
	total := workers * calls
	if n := len(by["call add"]); n != total {
		t.Errorf("call spans = %d, want %d", n, total)
	}
	if n := len(by["dispatch add"]); n != total {
		t.Errorf("dispatch spans = %d, want %d", n, total)
	}
	// Every call is its own trace; traces must not bleed together.
	traces := make(map[uint64]bool)
	for _, s := range by["call add"] {
		if traces[s.Trace] {
			t.Fatalf("two call roots share trace %d", s.Trace)
		}
		traces[s.Trace] = true
	}
	if h := trace.GlobalHistogram("schooner.client.call{proc=add}"); h == nil || h.Count() != int64(total) {
		t.Error("per-procedure histogram did not count every concurrent call")
	}
}

// TestManagerStatusReport pins the introspection endpoint: the KStatus
// round trip answers with the Manager's lines, health view, and the
// same counters trace.Get reads.
func TestManagerStatusReport(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	prev := trace.Swap(trace.NewSet())
	defer trace.Swap(prev)

	ln, err := d.client("sgi-lerc").ContactSchx("status-module")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "rs6000"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	for i := 0; i < 3; i++ {
		if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	report, err := QueryStatus(d.tr, "sgi-lerc", "avs-sparc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "schooner manager on avs-sparc") {
		t.Errorf("report header missing:\n%s", report)
	}
	if !strings.Contains(report, "status-module") {
		t.Errorf("report does not list the live line:\n%s", report)
	}
	if !strings.Contains(report, "(monitor off)") {
		t.Errorf("report health section wrong with monitor stopped:\n%s", report)
	}
	// The counters section must agree with trace.Get at this instant.
	calls := trace.Get("schooner.proc.calls")
	if calls == 0 {
		t.Fatal("no proc calls counted")
	}
	want := "schooner.proc.calls=" + itoa(calls)
	if !strings.Contains(report, want) {
		t.Errorf("report lacks %q:\n%s", want, report)
	}

	// With the monitor on, the health section lists machine states.
	d.mgr.StartHealth(HealthPolicy{Interval: 5 * time.Millisecond})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(d.mgr.HostHealth()) == 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	report, err = QueryStatus(d.tr, "sgi-lerc", "avs-sparc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "rs6000 up") {
		t.Errorf("report health section missing machines:\n%s", report)
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

package schooner

// Periodic checkpointing of stateful procedures: the Manager pulls
// KStateGet snapshots of every export with a state clause and appends
// them to the journal. A checkpoint becomes "acked" only once the
// journal append returns, and only acked checkpoints are used for
// restore — so a restored procedure's state is never older than the
// last acked checkpoint at the time its host died.

import (
	"time"

	"npss/internal/flight"
	"npss/internal/logx"
	"npss/internal/trace"
)

// StartCheckpoints begins the periodic checkpoint sweep. The ticker
// runs on the package clock, so DST drives it in virtual time. No-op
// if already running or the Manager is stopped.
func (m *Manager) StartCheckpoints(interval time.Duration) {
	if interval <= 0 {
		return
	}
	m.mu.Lock()
	if m.stopped || m.ckStop != nil {
		m.mu.Unlock()
		return
	}
	m.ckStop = make(chan struct{})
	m.ckDone = make(chan struct{})
	stop, done := m.ckStop, m.ckDone
	m.mu.Unlock()
	go m.checkpointLoop(interval, stop, done)
}

// StopCheckpoints halts the checkpoint loop, waiting for an in-flight
// sweep to finish.
func (m *Manager) StopCheckpoints() {
	m.mu.Lock()
	stop, done := m.ckStop, m.ckDone
	m.ckStop, m.ckDone = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (m *Manager) checkpointLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	ticker := clk().NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			m.CheckpointNow()
		}
	}
}

// CheckpointNow snapshots every stateful procedure once and journals
// the captured state. It reports how many processes were snapshotted
// and how many captures failed (process unreachable, state fetch
// error). Safe to call at any time; DST's checkpoint_now op calls it
// directly.
func (m *Manager) CheckpointNow() (snapshots, failures int) {
	targets := m.statefulVictims()
	for _, v := range targets {
		state, err := m.captureState(v.proc)
		if err != nil {
			failures++
			trace.Count("schooner.manager.checkpoint_failures")
			logx.For("manager", m.host).Debug("checkpoint capture failed",
				"proc", v.proc.path, "host", v.proc.host, "err", err)
			continue
		}
		m.mu.Lock()
		lineLive := v.ln == m.shared || m.lines[v.ln.id] == v.ln
		if m.stopped || !lineLive || v.ln.processes[v.proc.addr] != v.proc {
			// The process moved, failed over, or quit while its state
			// was in flight; the snapshot describes an instance that no
			// longer exists.
			m.mu.Unlock()
			continue
		}
		ck := m.checkpoints[v.proc.addr]
		if ck == nil {
			ck = make(map[string][]byte)
			m.checkpoints[v.proc.addr] = ck
		}
		acked := true
		// Journal in export order, so replay order is deterministic.
		for _, spec := range v.proc.exports {
			data, ok := state[spec.Name]
			if !ok {
				continue
			}
			if err := m.journalAppend(&journalRecord{
				Op: jopCheckpoint, Line: v.ln.id, Addr: v.proc.addr,
				Proc: spec.Name, State: data,
			}); err != nil {
				acked = false
				break
			}
			ck[spec.Name] = data
		}
		m.mu.Unlock()
		if !acked {
			failures++
			trace.Count("schooner.manager.checkpoint_failures")
			continue
		}
		snapshots++
		trace.Count("schooner.manager.checkpoints")
		flight.Record(flight.Event{Kind: flight.KindCheckpoint, Component: "manager",
			Host: m.host, Line: v.ln.id, Name: v.proc.path, Detail: v.proc.addr})
	}
	return snapshots, failures
}

// statefulVictims lists every installed process with at least one
// stateful export, ordered by line id then address so checkpoint and
// recovery sweeps are deterministic.
func (m *Manager) statefulVictims() []victim {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []victim
	collect := func(ln *line) {
		for _, pr := range sortedProcs(ln) {
			if !statelessProc(pr) {
				out = append(out, victim{ln, pr})
			}
		}
	}
	collect(m.shared)
	for _, id := range sortedLineIDs(m.lines) {
		collect(m.lines[id])
	}
	return out
}

// checkpointFor returns the last acked checkpoint covering every
// stateful export of proc, or nil when any is missing — a partial
// checkpoint cannot restore the process consistently.
func (m *Manager) checkpointFor(proc *remoteProc) map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	ck := m.checkpoints[proc.addr]
	if ck == nil {
		return nil
	}
	out := make(map[string][]byte)
	for _, spec := range proc.exports {
		if len(spec.State) == 0 {
			continue
		}
		data, ok := ck[spec.Name]
		if !ok {
			return nil
		}
		out[spec.Name] = data
	}
	return out
}

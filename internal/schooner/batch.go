package schooner

import (
	"fmt"

	"npss/internal/trace"
	"npss/internal/uts"
	"npss/internal/wire"
)

// Batched dispatch: one wire message carrying many procedure calls.
//
// Line.GoBatch coalesces calls whose bindings land in the same
// procedure process into one KBatch envelope sent directly to it.
// Client.GoBatchHosts goes a level up: calls from any of the client's
// lines whose processes merely share a machine ride one KBatch to that
// machine's Server, which fans the sub-calls out to its local
// processes in-memory. Either way a whole wavefront of calls costs one
// round trip per destination instead of one per call.
//
// Batching is an optimization, never a semantic change: each call in a
// batch carries exactly the KCall message it would have carried alone,
// and any failure to deliver a batch falls back to the per-call path
// with its full retry/rebind machinery.

// BatchCall names one procedure invocation of a Line.GoBatch.
type BatchCall struct {
	Name string
	Args []uts.Value
}

// CrossCall names one procedure invocation of a Client.GoBatchHosts:
// the call runs on its Line, with that line's import and binding.
type CrossCall struct {
	Line *Line
	Name string
	Args []uts.Value
}

// preparedCall is one batch member after marshaling and binding.
// rawArgs keeps the caller's unconverted arguments for the fallback
// path (prepare's conversion must not run twice).
type preparedCall struct {
	line    *Line
	name    string
	rawArgs []uts.Value
	pend    Pending // the member's Pending lives inline; &pc.pend is returned
	imp     *uts.ProcSpec
	pol     CallPolicy
	data    []byte
	b       *binding
}

// finish completes a pending with the counter semantics of Call.
func (pc *preparedCall) finish(res []uts.Value, err error) {
	if err != nil {
		trace.Count("schooner.client.call_failures")
	} else {
		trace.Count("schooner.client.calls")
	}
	pc.pend.res, pc.pend.err = res, err
	close(pc.pend.done)
}

// fallback re-runs the call through the ordinary per-call path — full
// retry, rebind, and failover machinery — and completes the pending
// with its outcome. Call does its own counting.
func (pc *preparedCall) fallback() {
	res, err := pc.line.Call(pc.name, pc.rawArgs...)
	pc.pend.res, pc.pend.err = res, err
	close(pc.pend.done)
}

// GoBatch begins the given calls together and returns one Pending per
// call, in order. Calls that bind to the same procedure process are
// coalesced into a single KBatch wire message — one round trip for the
// lot, executed in order at the process — and the rest dispatch
// individually. Any batch-level failure falls back to per-call
// dispatch, so GoBatch never fails in a way Go would not.
func (l *Line) GoBatch(calls []BatchCall) []*Pending {
	pends := make([]*Pending, len(calls))
	members := make([]*preparedCall, len(calls))
	// One backing array for the members, with each call's Pending
	// inline: batches sit on the hot path, where per-element
	// allocations add up.
	mback := make([]preparedCall, len(calls))
	for i, call := range calls {
		mback[i] = preparedCall{line: l, name: call.Name, rawArgs: call.Args,
			pend: Pending{done: make(chan struct{})}}
		members[i] = &mback[i]
		pends[i] = &mback[i].pend
	}
	go dispatchBatch(members)
	return pends
}

// GoBatchHosts begins the given calls — possibly from different lines
// of this client — together, coalescing calls whose processes share a
// machine into one KBatch sent to that machine's Server. The Server
// fans the sub-calls out to its processes in-memory, so calls to
// procedures in different processes on one host still cost a single
// round trip. Returns one Pending per call, in order.
func (c *Client) GoBatchHosts(calls []CrossCall) []*Pending {
	pends := make([]*Pending, len(calls))
	members := make([]*preparedCall, len(calls))
	mback := make([]preparedCall, len(calls))
	for i, call := range calls {
		mback[i] = preparedCall{line: call.Line, name: call.Name, rawArgs: call.Args,
			pend: Pending{done: make(chan struct{})}}
		members[i] = &mback[i]
		pends[i] = &mback[i].pend
	}
	go dispatchBatchHosts(c, members)
	return pends
}

// bindMembers marshals every member and resolves its binding. Members
// that fail to marshal are completed with the error; members that fail
// to bind fall back to the per-call path (which retries the lookup).
// The survivors are returned.
func bindMembers(members []*preparedCall) []*preparedCall {
	ready := members[:0] // filter in place; callers only use the result
	for _, m := range members {
		imp, pol, data, err := m.line.prepare(m.name, m.rawArgs)
		if err != nil {
			m.finish(nil, err)
			continue
		}
		m.imp, m.pol, m.data = imp, pol, data
		m.line.mu.Lock()
		b := m.line.bindings[m.name]
		m.line.mu.Unlock()
		if b == nil {
			b, err = m.line.lookup(m.name, imp, nil)
			if err != nil {
				go m.fallback()
				continue
			}
		}
		m.b = b
		ready = append(ready, m)
	}
	return ready
}

// dispatchBatch groups one line's members by process address and sends
// one KBatch per multi-member process; singletons go per-call.
func dispatchBatch(members []*preparedCall) {
	ready := bindMembers(members)
	if len(ready) == 0 {
		return
	}
	// Fast path: every member bound to one process — the common shape —
	// dispatches without grouping maps or a second goroutine.
	if sameKey(ready, func(m *preparedCall) string { return m.b.addr }) {
		if len(ready) == 1 {
			ready[0].fallback()
			return
		}
		sendProcessBatch(ready)
		return
	}
	groups := make(map[string][]*preparedCall)
	var order []string
	for _, m := range ready {
		if len(groups[m.b.addr]) == 0 {
			order = append(order, m.b.addr)
		}
		groups[m.b.addr] = append(groups[m.b.addr], m)
	}
	for _, addr := range order {
		group := groups[addr]
		if len(group) == 1 {
			go group[0].fallback()
			continue
		}
		go sendProcessBatch(group)
	}
}

// sameKey reports whether every member maps to the same key.
func sameKey(members []*preparedCall, key func(*preparedCall) string) bool {
	first := key(members[0])
	for _, m := range members[1:] {
		if key(m) != first {
			return false
		}
	}
	return true
}

// sendProcessBatch delivers one group of same-process calls as a
// KBatch on the binding's pipelined connection.
func sendProcessBatch(group []*preparedCall) {
	l := group[0].line
	owner := group[0].b
	pc, err := owner.pipeline(l.client.Transport, l.client.Host, group[0].name)
	if err != nil {
		l.invalidate(group[0].name, owner)
		trace.Count("schooner.client.stale")
		fallbackAll(group)
		return
	}
	// One attempt span covers the whole envelope's round trip; each
	// sub-call carries its context so the remote dispatch spans parent
	// under it and the wire transit shows up as the attempt's
	// self-time, exactly as on the per-call path.
	var att *trace.Span
	if trace.Enabled() {
		att = trace.StartSpan(fmt.Sprintf("attempt batch ×%d %s", len(group), addrHost(owner.addr)), l.client.Host)
	}
	var attCtx trace.SpanContext
	if att != nil {
		attCtx = att.Context()
	}
	// The envelope payload is dead once exchange returns (the reply is
	// a fresh message), so a pooled scratch buffer carries it; one
	// request message is reused across the sub-frames (AppendSub
	// encodes it immediately and keeps nothing).
	subs := wire.GetBuf()
	defer func() { wire.PutBuf(subs) }()
	var req wire.Message
	for _, m := range group {
		req = wire.Message{
			Kind: wire.KCall, Seq: l.nextSeq(), Line: l.id,
			Name: m.b.exportName, Str: m.imp.Signature(), Data: m.data,
			Trace: attCtx.Trace, Span: attCtx.Span,
		}
		subs, err = wire.AppendSub(subs, "", &req)
		if err != nil {
			att.End()
			fallbackAll(group)
			return
		}
	}
	env := &wire.Message{Kind: wire.KBatch, Seq: l.nextSeq(), Line: l.id, Data: subs}
	resp, err := pc.exchange(env, group[0].pol.Timeout)
	if att != nil && err != nil {
		att.Annotate("error", err.Error())
	}
	att.End()
	if err != nil {
		// The envelope never made it (or timed out): the process may be
		// gone or moving. Invalidate once and let each call retry
		// through the ordinary machinery.
		l.invalidate(group[0].name, owner)
		trace.Count("schooner.client.stale")
		fallbackAll(group)
		return
	}
	trace.Count("schooner.client.batches")
	completeBatch(group, resp)
}

// dispatchBatchHosts groups members by destination machine and sends
// one addressed KBatch per multi-member host to its Server; singleton
// hosts go per-call.
func dispatchBatchHosts(c *Client, members []*preparedCall) {
	ready := bindMembers(members)
	if len(ready) == 0 {
		return
	}
	if sameKey(ready, func(m *preparedCall) string { return addrHost(m.b.addr) }) {
		if len(ready) == 1 {
			ready[0].fallback()
			return
		}
		sendHostBatch(c, addrHost(ready[0].b.addr), ready)
		return
	}
	groups := make(map[string][]*preparedCall)
	var order []string
	for _, m := range ready {
		host := addrHost(m.b.addr)
		if len(groups[host]) == 0 {
			order = append(order, host)
		}
		groups[host] = append(groups[host], m)
	}
	for _, host := range order {
		group := groups[host]
		if len(group) == 1 {
			go group[0].fallback()
			continue
		}
		go sendHostBatch(c, host, group)
	}
}

// sendHostBatch delivers one group of same-host calls as an addressed
// KBatch to the host's Server on the client's shared connection.
func sendHostBatch(c *Client, host string, group []*preparedCall) {
	g, err := c.serverConn(host)
	if err != nil {
		fallbackAll(group)
		return
	}
	// As on the process-batch path: one attempt span for the envelope's
	// round trip, its context carried on every sub-call so the remote
	// dispatch spans parent under it.
	var att *trace.Span
	if trace.Enabled() {
		att = trace.StartSpan(fmt.Sprintf("attempt batch ×%d %s", len(group), host), c.Host)
	}
	var attCtx trace.SpanContext
	if att != nil {
		attCtx = att.Context()
	}
	subs := wire.GetBuf()
	defer func() { wire.PutBuf(subs) }()
	var req wire.Message
	for _, m := range group {
		req = wire.Message{
			Kind: wire.KCall, Seq: c.nextBatchSeq(), Line: m.line.id,
			Name: m.b.exportName, Str: m.imp.Signature(), Data: m.data,
			Trace: attCtx.Trace, Span: attCtx.Span,
		}
		subs, err = wire.AppendSub(subs, m.b.addr, &req)
		if err != nil {
			att.End()
			fallbackAll(group)
			return
		}
	}
	env := &wire.Message{Kind: wire.KBatch, Seq: c.nextBatchSeq(), Data: subs}
	resp, err := g.exchange(env, group[0].pol.Timeout)
	if att != nil && err != nil {
		att.Annotate("error", err.Error())
	}
	att.End()
	if err != nil {
		fallbackAll(group)
		return
	}
	trace.Count("schooner.client.host_batches")
	completeBatch(group, resp)
}

// completeBatch distributes a KBatchOK's reply sub-frames to the
// group, in request order. Sub-replies carrying the stale sentinel
// (the process died or moved mid-batch) fall back per-call; other
// errors are the call's final outcome.
func completeBatch(group []*preparedCall, resp *wire.Message) {
	if resp.Kind != wire.KBatchOK {
		_, err := callReplyData(resp)
		if err == nil {
			err = fmt.Errorf("schooner: unexpected %v reply to batch", resp.Kind)
		}
		if isStale(err) {
			// The whole envelope hit a terminated process — the group's
			// shared destination moved. Invalidate and retry per-call.
			for _, m := range group {
				m.line.invalidate(m.name, m.b)
			}
			trace.Count("schooner.client.stale")
			fallbackAll(group)
			return
		}
		failAll(group, err)
		return
	}
	// Walk the reply sub-frames in place; no intermediate slice.
	rest := resp.Data
	for i, m := range group {
		if len(rest) == 0 {
			failAll(group[i:], fmt.Errorf("schooner: batch of %d calls got %d replies", len(group), i))
			return
		}
		sub, r, err := wire.SplitSub(rest)
		if err != nil {
			failAll(group[i:], err)
			return
		}
		rest = r
		reply, err := callReplyData(sub.Msg)
		if err != nil {
			if isStale(err) {
				m.line.invalidate(m.name, m.b)
				trace.Count("schooner.client.stale")
				go m.fallback()
				continue
			}
			m.finish(nil, err)
			continue
		}
		res, err := m.line.decodeResults(m.imp, reply)
		m.finish(res, err)
	}
}

func fallbackAll(group []*preparedCall) {
	for _, m := range group {
		go m.fallback()
	}
}

func failAll(group []*preparedCall, err error) {
	for _, m := range group {
		m.finish(nil, err)
	}
}

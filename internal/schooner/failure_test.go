package schooner

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"npss/internal/machine"
	"npss/internal/uts"
	"npss/internal/wire"
)

// TestHostDownDuringCalls injects a machine failure under an active
// line: calls fail with errors (never hang), and after the machine
// recovers the line can be rebuilt.
func TestHostDownDuringCalls(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(2)); err != nil {
		t.Fatal(err)
	}

	// The machine goes down mid-simulation.
	d.net.SetHostDown("sgi-lerc", true)
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(2)); err == nil {
		t.Fatal("call to a down machine succeeded")
	}
	// It stays failed (the retry path must not loop forever).
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(2)); err == nil {
		t.Fatal("second call to a down machine succeeded")
	}

	// After recovery, the user reloads the module: a new line works.
	// (The old process was lost with the machine; the Manager's
	// mapping still points at it, so the honest outcome for the old
	// line is an error — the module's error path then quits the line,
	// which is the paper's per-line failure semantics.)
	d.net.SetHostDown("sgi-lerc", false)
	ln.IQuit()
	ln2, err := d.client("avs-sparc").ContactSchx("m-reloaded")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.IQuit()
	// The dead process is gone; the server lost it when the host died?
	// In this simulation the process objects survive SetHostDown, so a
	// fresh start gives a fresh, reachable process either way.
	if err := ln2.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln2.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	out, err := ln2.Call("add", uts.DoubleVal(20), uts.DoubleVal(22))
	if err != nil || out[0].F != 42 {
		t.Fatalf("post-recovery call = %v, %v", out, err)
	}
}

// TestManagerUnreachable exercises startup failures: no Manager, or a
// Manager behind a downed link.
func TestManagerUnreachable(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	// From a host with no route to the manager.
	d.net.SetLinkDown("sgi-lerc", "avs-sparc", true)
	c := &Client{Transport: d.tr, Host: "sgi-lerc", ManagerHost: "avs-sparc"}
	if _, err := c.ContactSchx("stranded"); err == nil {
		t.Fatal("registration across a down link succeeded")
	}
	d.net.SetLinkDown("sgi-lerc", "avs-sparc", false)
	ln, err := c.ContactSchx("recovered")
	if err != nil {
		t.Fatal(err)
	}
	ln.IQuit()
}

// TestServerAbsent covers starting on a machine with no Server: the
// Manager reports the failure to the module.
func TestServerAbsent(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	// Stop one server; the machine is alive but serverless.
	d.servers["rs6000"].Stop()
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	err := ln.StartRemote("/npss/adder", "rs6000")
	if err == nil || !strings.Contains(err.Error(), "rs6000") {
		t.Fatalf("start on serverless machine: %v", err)
	}
	// Other machines unaffected.
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMigrationStress moves procedures between machines
// while other lines keep calling: migrations must never corrupt
// unrelated lines (run with -race).
func TestConcurrentMigrationStress(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	imp := uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`)

	const lines = 4
	var wg sync.WaitGroup
	errs := make(chan error, lines)
	for i := 0; i < lines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ln, err := d.client("avs-sparc").ContactSchx(fmt.Sprintf("stress-%d", i))
			if err != nil {
				errs <- err
				return
			}
			defer ln.IQuit()
			if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
				errs <- err
				return
			}
			ln.Import(imp)
			hosts := []string{"rs6000", "sgi-lerc"}
			for j := 0; j < 20; j++ {
				if j%5 == 4 {
					if err := ln.Move("add", hosts[j%2], false); err != nil {
						errs <- fmt.Errorf("line %d move %d: %w", i, j, err)
						return
					}
				}
				out, err := ln.Call("add", uts.DoubleVal(float64(i)), uts.DoubleVal(float64(j)))
				if err != nil {
					errs <- fmt.Errorf("line %d call %d: %w", i, j, err)
					return
				}
				if out[0].F != float64(i+j) {
					errs <- fmt.Errorf("line %d call %d: got %g", i, j, out[0].F)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQuickDecodeMessageNeverPanics fuzzes the wire decoder with
// random byte strings through the schooner-visible entry point: the
// decoder must reject or accept, never panic (a hostile peer must not
// crash the Manager).
func TestQuickDecodeMessageNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, r.Intn(200))
		r.Read(buf)
		_, _ = wire.DecodeMessage(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestProcessRejectsGarbageCalls sends malformed calls directly to a
// procedure process: wrong signatures, wrong payloads, unknown kinds.
func TestProcessRejectsGarbageCalls(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
		t.Fatal(err)
	}
	// Find the process address via a manager lookup by hand.
	mgrConn, err := d.tr.Dial("avs-sparc", "avs-sparc:"+ManagerPort)
	if err != nil {
		t.Fatal(err)
	}
	defer mgrConn.Close()
	// Hostile direct connection (reusing the line's binding address is
	// not exposed; dial the process through a fresh lookup on the same
	// line id is not possible from another conn, so go through the
	// line's own cache by calling once more and capturing the addr via
	// the manager database listing instead).
	host, _ := d.net.Host("sgi-lerc")
	_ = host
	// Simplest hostile path: send garbage to the process through a
	// conn obtained from the line's binding.
	b := ln.bindings["add"]
	if b == nil {
		t.Fatal("no binding cached")
	}
	hostile, err := d.tr.Dial("avs-sparc", b.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hostile.Close()
	cases := []*wire.Message{
		{Kind: wire.KCall, Name: "add", Str: "not a signature", Data: nil},
		{Kind: wire.KCall, Name: "add", Str: `prog("a" val double, "b" val double, "sum" res double)`, Data: []byte{1, 2}},
		{Kind: wire.KCall, Name: "missing", Str: `prog()`},
		{Kind: wire.KStateGet, Name: "add"},
		{Kind: wire.KLookup, Name: "add"},
	}
	for i, m := range cases {
		if err := hostile.Send(m); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		resp, err := hostile.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if resp.Kind != wire.KError {
			t.Errorf("case %d: got %v, want error", i, resp.Kind)
		}
	}
	// The line still works after the hostile traffic.
	if out, err := ln.Call("add", uts.DoubleVal(2), uts.DoubleVal(3)); err != nil || out[0].F != 5 {
		t.Fatalf("line broken after hostile traffic: %v, %v", out, err)
	}
}

// TestCrayArchPresence double-checks the deployment helper wiring used
// above.
func TestCrayArchPresence(t *testing.T) {
	if machine.CrayYMP.Name != "cray-ymp" {
		t.Fatal("unexpected arch registry")
	}
}

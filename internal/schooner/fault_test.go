package schooner

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"npss/internal/netsim"
	"npss/internal/trace"
	"npss/internal/uts"
)

// TestIsStaleWrapped is the regression for the errors.As fix: a stale
// error that callers wrapped with context must still trigger the
// rebind path.
func TestIsStaleWrapped(t *testing.T) {
	direct := &staleError{errors.New("binding gone")}
	if !isStale(direct) {
		t.Error("direct stale error not recognized")
	}
	wrapped := fmt.Errorf("call to %q failed: %w", "add", direct)
	if !isStale(wrapped) {
		t.Error("wrapped stale error not recognized — rebind would be skipped")
	}
	doubly := fmt.Errorf("line 3: %w", wrapped)
	if !isStale(doubly) {
		t.Error("doubly wrapped stale error not recognized")
	}
	if isStale(errors.New("plain failure")) {
		t.Error("plain error misclassified as stale")
	}
	if isStale(nil) {
		t.Error("nil misclassified as stale")
	}
}

// trapProgram exports trap, which calls fn then returns its argument —
// used to kill the host between the request and the reply.
func trapProgram(path string, fn func()) *Program {
	return &Program{
		Path:     path,
		Language: LangC,
		Build: func() (*Instance, error) {
			p := &BoundProc{
				Spec: uts.MustParseProc(`export trap prog("x" val double, "y" res double)`),
				Fn: func(in []uts.Value) ([]uts.Value, error) {
					fn()
					return []uts.Value{uts.DoubleVal(in[0].F)}, nil
				},
			}
			return NewInstance(p)
		},
	}
}

// TestCallDeadlineHostDownAfterSend is the never-hang regression: the
// host dies after the request is sent but before the reply arrives.
// Without a deadline the client would block in Recv forever; with the
// policy it must return an error within the retry budget.
func TestCallDeadlineHostDownAfterSend(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	SetRetrySeed(61)
	d.reg.MustRegister(trapProgram("/npss/trap", func() {
		d.net.SetHostDown("sgi-lerc", true)
	}))
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/trap", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import trap prog("x" val double, "y" res double)`))
	ln.SetCallPolicy(CallPolicy{
		Timeout:    150 * time.Millisecond,
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		MaxBackoff: 5 * time.Millisecond,
	})

	timeoutsBefore := trace.Get("schooner.client.timeouts")
	start := time.Now()
	_, err = ln.Call("trap", uts.DoubleVal(1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call survived its host dying mid-call")
	}
	// One timed-out attempt plus two fast-failing retries with small
	// backoffs: well under a second, and categorically not a hang.
	if elapsed > 2*time.Second {
		t.Fatalf("call took %v, deadline not enforced", elapsed)
	}
	if got := trace.Get("schooner.client.timeouts"); got == timeoutsBefore {
		t.Error("receive timeout not counted")
	}
}

// TestCallRetriesThroughLoss checks that calls ride out probabilistic
// message loss: with 30% of messages dropped on the wire, every call
// still completes via timeout-and-retry, and the retry counters tick.
func TestCallRetriesThroughLoss(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	// Bind once over a clean wire, then degrade the link.
	if _, err := ln.Call("add", uts.DoubleVal(0), uts.DoubleVal(0)); err != nil {
		t.Fatal(err)
	}
	d.net.SetFaultSeed(17)
	SetRetrySeed(17)
	d.net.SetLinkFlaky("avs-sparc", "sgi-lerc", netsim.FaultSpec{LossProb: 0.3})
	ln.SetCallPolicy(CallPolicy{
		Timeout:    50 * time.Millisecond,
		MaxRetries: 30,
		Backoff:    time.Millisecond,
		MaxBackoff: 5 * time.Millisecond,
	})

	retriesBefore := trace.Get("schooner.client.retries")
	for i := 0; i < 10; i++ {
		out, err := ln.Call("add", uts.DoubleVal(float64(i)), uts.DoubleVal(1))
		if err != nil {
			t.Fatalf("call %d failed despite retry budget: %v", i, err)
		}
		if out[0].F != float64(i+1) {
			t.Fatalf("call %d = %g", i, out[0].F)
		}
	}
	if d.net.TotalDropped() == 0 {
		t.Error("fault injection dropped nothing at 30% loss")
	}
	if trace.Get("schooner.client.retries") == retriesBefore {
		t.Error("no retries counted while messages were being dropped")
	}
}

// TestHealthFailoverStateless is the recovery integration test at the
// schooner level: the Manager's health monitor detects a dead machine,
// restarts its stateless process elsewhere, repoints the name DB, and
// a client call in flight recovers through the ordinary stale-cache
// rebind — while a stateful process on the same machine is left alone.
func TestHealthFailoverStateless(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	SetRetrySeed(1993)
	d.reg.MustRegister(adderProgram("/npss/adder"))
	d.reg.MustRegister(counterProgram("/npss/counter"))

	ln, err := d.client("avs-sparc").ContactSchx("m")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	if err := ln.StartRemote("/npss/counter", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	ln.Import(uts.MustParseProc(`import next prog("n" res integer)`))
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(1)); err != nil {
		t.Fatal(err)
	}

	d.mgr.StartHealth(HealthPolicy{
		Interval:    5 * time.Millisecond,
		Threshold:   2,
		PingTimeout: 50 * time.Millisecond,
	})
	failoversBefore := trace.Get("schooner.manager.failovers")
	skippedBefore := trace.Get("schooner.manager.failover_skipped_stateful")

	d.net.SetHostDown("sgi-lerc", true)

	// A generous retry budget: the first attempts fail fast against the
	// dead machine while the monitor detects it (2 sweeps of 5ms) and
	// respawns; a later attempt's re-ask finds the new home.
	ln.SetCallPolicy(CallPolicy{
		Timeout:    100 * time.Millisecond,
		MaxRetries: 30,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	out, err := ln.Call("add", uts.DoubleVal(20), uts.DoubleVal(22))
	if err != nil {
		t.Fatalf("call did not recover through failover: %v", err)
	}
	if out[0].F != 42 {
		t.Fatalf("recovered call = %g", out[0].F)
	}
	if got := trace.Get("schooner.manager.failovers"); got == failoversBefore {
		t.Error("no failover counted")
	}
	if got := trace.Get("schooner.manager.failover_skipped_stateful"); got == skippedBefore {
		t.Error("stateful process not reported as skipped")
	}
	health := d.mgr.HostHealth()
	if alive, ok := health["sgi-lerc"]; !ok || alive {
		t.Errorf("monitor reports sgi-lerc health %v/%v, want dead", alive, ok)
	}
	// The stateful counter must NOT have been failed over: its calls
	// keep failing while the machine is down.
	ln.SetCallPolicy(CallPolicy{
		Timeout:    100 * time.Millisecond,
		MaxRetries: 1,
		Backoff:    time.Millisecond,
		MaxBackoff: 2 * time.Millisecond,
	})
	if _, err := ln.Call("next"); err == nil {
		t.Error("stateful procedure answered from beyond the grave")
	}
}

// TestHealthRecovery checks the up transition: a machine that comes
// back is re-marked alive.
func TestHealthRecovery(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.mgr.StartHealth(HealthPolicy{
		Interval:    5 * time.Millisecond,
		Threshold:   2,
		PingTimeout: 50 * time.Millisecond,
	})
	upBefore := trace.Get("schooner.manager.hostup")
	d.net.SetHostDown("rs6000", true)
	deadline := time.Now().Add(2 * time.Second)
	declaredDead := false
	for time.Now().Before(deadline) {
		if alive, probed := d.mgr.HostHealth()["rs6000"]; probed && !alive {
			declaredDead = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !declaredDead {
		t.Fatal("rs6000 never declared dead")
	}
	d.net.SetHostDown("rs6000", false)
	for time.Now().Before(deadline) {
		if d.mgr.HostHealth()["rs6000"] {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !d.mgr.HostHealth()["rs6000"] {
		t.Fatal("rs6000 never recovered")
	}
	if trace.Get("schooner.manager.hostup") == upBefore {
		t.Error("recovery transition not counted")
	}
}

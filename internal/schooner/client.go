package schooner

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"npss/internal/flight"
	"npss/internal/logx"
	"npss/internal/machine"
	"npss/internal/trace"
	"npss/internal/tseries"
	"npss/internal/uts"
	"npss/internal/wire"
)

// inject copies a span's context into a request message; a nil span
// leaves the message untraced.
func inject(m *wire.Message, sp *trace.Span) {
	ctx := sp.Context()
	m.Trace, m.Span = ctx.Trace, ctx.Span
}

// Client is the Schooner communication library as linked into one
// module (for example an AVS module): it knows which machine it runs
// on and where the Manager lives.
type Client struct {
	Transport Transport
	// Host is the machine this module executes on.
	Host string
	// ManagerHost is the machine the persistent Manager runs on.
	ManagerHost string
	// Managers lists additional Manager hosts to try, in order, when
	// ManagerHost is unreachable — the warm standbys. A line whose
	// Manager connection dies re-attaches to the first host that
	// recognizes it.
	Managers []string
	// Policy bounds calls on every line this client opens. The zero
	// value applies the package defaults (see CallPolicy).
	Policy CallPolicy

	// mu guards the cross-line batching state: the cached per-host
	// Server connections GoBatchHosts coalesces onto, and their
	// sequence counter.
	mu       sync.Mutex
	srvConns map[string]*demuxConn
	batchSeq uint32
}

// serverConn returns the client's shared demultiplexed connection to a
// machine's Server, dialing on first use or after the previous one
// died.
func (c *Client) serverConn(host string) (*demuxConn, error) {
	c.mu.Lock()
	if g := c.srvConns[host]; g != nil && !g.dead() {
		c.mu.Unlock()
		return g, nil
	}
	c.mu.Unlock()
	conn, err := c.Transport.Dial(c.Host, host+":"+ServerPort)
	if err != nil {
		return nil, &staleError{fmt.Errorf("schooner: cannot reach server on %s: %w", host, err)}
	}
	fresh := newDemuxConn(conn)
	c.mu.Lock()
	if g := c.srvConns[host]; g != nil && !g.dead() {
		c.mu.Unlock()
		fresh.Close()
		return g, nil
	}
	if c.srvConns == nil {
		c.srvConns = make(map[string]*demuxConn)
	}
	old := c.srvConns[host]
	c.srvConns[host] = fresh
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return fresh, nil
}

// nextBatchSeq allocates a sequence number for the client's Server
// connections, on which sub-requests from many lines interleave.
func (c *Client) nextBatchSeq() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batchSeq++
	return c.batchSeq
}

// Close releases the client's cached Server connections (the cross-
// line batch path). Lines opened through the client are unaffected;
// quit them individually with IQuit.
func (c *Client) Close() {
	c.mu.Lock()
	conns := c.srvConns
	c.srvConns = nil
	c.mu.Unlock()
	for _, g := range conns {
		g.Close()
	}
}

// managerHosts is the ordered list of Manager hosts to try: the
// primary first, then the standbys.
func (c *Client) managerHosts() []string {
	return append([]string{c.ManagerHost}, c.Managers...)
}

// arch resolves the client's own architecture.
func (c *Client) arch() (*machine.Arch, error) {
	return c.Transport.HostArch(c.Host)
}

// ContactSchx registers the module with the Manager and opens a new
// line — the call a module makes from its compute function the first
// time it is scheduled. The returned Line is the module's handle for
// starting, calling, moving, and shutting down remote procedures.
func (c *Client) ContactSchx(module string) (*Line, error) {
	var lastErr error
	for _, mh := range c.managerHosts() {
		conn, id, err := c.registerAt(mh, module)
		if err != nil {
			lastErr = err
			continue
		}
		return &Line{
			client:   c,
			id:       id,
			module:   module,
			mgr:      newDemuxConn(conn),
			policy:   c.Policy,
			imports:  make(map[string]*uts.ProcSpec),
			bindings: make(map[string]*binding),
		}, nil
	}
	return nil, lastErr
}

// registerAt opens a new line with the Manager on one host.
func (c *Client) registerAt(managerHost, module string) (wire.Conn, uint32, error) {
	conn, err := c.Transport.Dial(c.Host, managerHost+":"+ManagerPort)
	if err != nil {
		return nil, 0, fmt.Errorf("schooner: cannot reach manager on %s: %w", managerHost, err)
	}
	if err := conn.Send(&wire.Message{Kind: wire.KRegisterLine, Name: module}); err != nil {
		conn.Close()
		return nil, 0, err
	}
	resp, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	if resp.Kind != wire.KLineOK {
		conn.Close()
		return nil, 0, fmt.Errorf("schooner: register failed: %s", resp.Err)
	}
	return conn, resp.Line, nil
}

// Line is one thread of control in a Schooner program: a sequential
// execution of procedures, some of which may be located on remote
// machines. Lines execute independently of each other with no
// synchronization; procedure names are unique within a line but may
// repeat across lines.
//
// A Line is safe for concurrent use: any number of goroutines may
// issue Call and Go through it, and the in-flight calls overlap on the
// wire (each leases its own connection to the procedure process). The
// mutex guards only the binding cache, the import table, and the
// sequence-number bookkeeping — it is never held across a network
// round trip or a backoff sleep.
type Line struct {
	client *Client
	id     uint32
	module string

	mu       sync.Mutex
	mgr      *demuxConn
	mgrGen   int // bumped on every reattach; guards the swap race
	seq      uint32
	policy   CallPolicy
	imports  map[string]*uts.ProcSpec
	bindings map[string]*binding
	quit     bool
}

// SetCallPolicy overrides the line's call policy (inherited from the
// client at ContactSchx time).
func (l *Line) SetCallPolicy(p CallPolicy) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.policy = p
}

// nextSeq allocates a request sequence number.
func (l *Line) nextSeq() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	return l.seq
}

// currentPolicy reads the line's policy with defaults applied.
func (l *Line) currentPolicy() CallPolicy {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.policy.withDefaults()
}

// isQuit reports whether the line has been shut down.
func (l *Line) isQuit() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quit
}

// mgrc reads the current Manager connection and its generation.
func (l *Line) mgrc() (*demuxConn, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mgr, l.mgrGen
}

// demuxConn multiplexes one shared connection across concurrently
// calling goroutines: requests carry a sequence number, the peer echoes
// it in every reply, and a reader goroutine routes each reply to the
// goroutine whose request carried that number. It is both the line's
// Manager connection and — since servers and procedure processes
// learned to reply out of order — the pipelined procedure-call path:
// any number of requests may be in flight on the same connection at
// once. On a deadline, the waiter abandons its pending entry but the
// connection stays open — a late reply to an abandoned seq is simply
// discarded.
type demuxConn struct {
	conn wire.Conn

	// sendMu serializes frames onto the shared connection.
	sendMu sync.Mutex

	mu      sync.Mutex
	pending map[uint32]chan *wire.Message
	err     error // terminal receive failure: the connection is dead
}

func newDemuxConn(conn wire.Conn) *demuxConn {
	g := &demuxConn{conn: conn, pending: make(map[uint32]chan *wire.Message)}
	go g.readLoop()
	return g
}

// readLoop dispatches replies by echoed sequence number. Replies whose
// waiter already gave up are discarded. A receive error is terminal:
// every pending and future waiter fails.
func (g *demuxConn) readLoop() {
	for {
		m, err := g.conn.Recv()
		if err != nil {
			g.mu.Lock()
			g.err = err
			for seq, ch := range g.pending {
				close(ch)
				delete(g.pending, seq)
			}
			g.mu.Unlock()
			return
		}
		g.mu.Lock()
		ch, ok := g.pending[m.Seq]
		if ok {
			delete(g.pending, m.Seq)
		}
		g.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

func (g *demuxConn) forget(seq uint32) {
	g.mu.Lock()
	delete(g.pending, seq)
	g.mu.Unlock()
}

// exchange performs one request/response round trip, bounded by
// timeout. Transport failures and timeouts are transient (wrapped
// stale); the reply — including KError — is returned uninterpreted,
// because Manager and procedure callers attach different meanings to
// an error reply.
func (g *demuxConn) exchange(req *wire.Message, timeout time.Duration) (*wire.Message, error) {
	ch := make(chan *wire.Message, 1)
	g.mu.Lock()
	if g.err != nil {
		err := g.err
		g.mu.Unlock()
		return nil, &staleError{fmt.Errorf("schooner: shared connection lost: %w", err)}
	}
	g.pending[req.Seq] = ch
	g.mu.Unlock()

	g.sendMu.Lock()
	err := g.conn.Send(req)
	g.sendMu.Unlock()
	if err != nil {
		g.forget(req.Seq)
		return nil, &staleError{err}
	}
	trace.Count("schooner.client.rpcs")

	var timerC <-chan time.Time
	if timeout > 0 {
		timer := clk().NewTimer(timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, &staleError{errors.New("schooner: shared connection lost")}
		}
		return resp, nil
	case <-timerC:
		g.forget(req.Seq)
		return nil, &staleError{&timeoutError{peer: g.conn.RemoteLabel(), d: timeout}}
	}
}

// call is exchange with the Manager's error convention applied: a
// KError reply is an application error and final.
func (g *demuxConn) call(req *wire.Message, timeout time.Duration) (*wire.Message, error) {
	resp, err := g.exchange(req, timeout)
	if err != nil {
		return nil, err
	}
	if resp.Kind == wire.KError {
		return nil, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

// Close tears down the underlying connection; the reader goroutine
// exits and pending waiters fail.
func (g *demuxConn) Close() { g.conn.Close() }

// dead reports whether the connection hit a terminal receive failure.
// Timeouts are not terminal — a slow reply still arrives on a live
// connection — so dead distinguishes "the peer (or its connection) is
// gone" from "retry here".
func (g *demuxConn) dead() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err != nil
}

// binding caches the location of one remote procedure: the paper's
// per-procedure name cache, refreshed lazily when a call to a stale
// address fails after a move.
//
// The default data path is one shared pipelined connection per binding
// (pipe): concurrent calls ride it together, matched to their replies
// by sequence number, because procedure processes dispatch requests
// out of order. For peers that serve a connection strictly
// sequentially (CallPolicy.NoPipeline), connections are instead leased
// per in-flight call and pooled for reuse between calls; the pool is
// capped at maxIdleConns so a burst of N concurrent calls cannot pin N
// connections forever.
type binding struct {
	addr       string
	exportName string

	mu    sync.Mutex
	idle  []wire.Conn
	pipe  *demuxConn
	stale bool
}

// maxIdleConns caps each binding's leased-connection pool. Beyond it,
// released connections are closed: a 64-way burst briefly dials 64
// conns, but the pool settles back to this bound.
const maxIdleConns = 4

// pipeline returns the binding's shared demuxed connection, dialing it
// on first use or after the previous one died. Dialing happens outside
// the binding lock; when several goroutines race to establish it, the
// first to install wins and the others' dials are closed.
func (b *binding) pipeline(t Transport, from, name string) (*demuxConn, error) {
	b.mu.Lock()
	if b.stale {
		b.mu.Unlock()
		return nil, &staleError{fmt.Errorf("schooner: binding for %q invalidated", name)}
	}
	if b.pipe != nil && !b.pipe.dead() {
		p := b.pipe
		b.mu.Unlock()
		return p, nil
	}
	b.mu.Unlock()
	conn, err := t.Dial(from, b.addr)
	if err != nil {
		// Transient: the mapped host may be mid-crash, with the
		// Manager's failover about to repoint the name; retry.
		return nil, &staleError{fmt.Errorf("schooner: procedure %q mapped to unreachable %s: %w", name, b.addr, err)}
	}
	fresh := newDemuxConn(conn)
	b.mu.Lock()
	if b.stale {
		b.mu.Unlock()
		fresh.Close()
		return nil, &staleError{fmt.Errorf("schooner: binding for %q invalidated", name)}
	}
	if b.pipe != nil && !b.pipe.dead() {
		p := b.pipe
		b.mu.Unlock()
		fresh.Close()
		return p, nil
	}
	old := b.pipe
	b.pipe = fresh
	b.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return fresh, nil
}

// lease hands out a pooled idle connection or dials a fresh one.
func (b *binding) lease(t Transport, from, name string) (wire.Conn, error) {
	b.mu.Lock()
	if n := len(b.idle); n > 0 {
		conn := b.idle[n-1]
		b.idle = b.idle[:n-1]
		b.mu.Unlock()
		return conn, nil
	}
	b.mu.Unlock()
	conn, err := t.Dial(from, b.addr)
	if err != nil {
		// Transient: the mapped host may be mid-crash, with the
		// Manager's failover about to repoint the name; retry.
		return nil, &staleError{fmt.Errorf("schooner: procedure %q mapped to unreachable %s: %w", name, b.addr, err)}
	}
	return conn, nil
}

// release returns a healthy connection to the pool, unless the binding
// was invalidated while the call was in flight or the pool is already
// at its cap (the overflow of a call burst is closed, not pooled).
func (b *binding) release(conn wire.Conn) {
	b.mu.Lock()
	if b.stale || len(b.idle) >= maxIdleConns {
		evict := !b.stale
		b.mu.Unlock()
		conn.Close()
		if evict {
			trace.Count("schooner.client.pool_evictions")
		}
		return
	}
	b.idle = append(b.idle, conn)
	b.mu.Unlock()
}

// markStale invalidates the binding and closes its pooled and
// pipelined connections; calls in flight on them fail stale and retry
// against the rebound address.
func (b *binding) markStale() {
	b.mu.Lock()
	b.stale = true
	idle := b.idle
	b.idle = nil
	pipe := b.pipe
	b.pipe = nil
	b.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
	if pipe != nil {
		pipe.Close()
	}
}

// ID returns the Manager-assigned line id.
func (l *Line) ID() uint32 { return l.id }

// Module returns the module name the line registered under.
func (l *Line) Module() string { return l.module }

// managerCall performs one request/response with the Manager, bounded
// by the line's call deadline. The sequence number is allocated under
// the line lock; the round trip itself runs on the demultiplexed
// Manager connection with no lock held. A terminally dead connection
// — the Manager crashed, or a standby took over on another host — is
// cured by re-attaching the line and retrying the request once.
func (l *Line) managerCall(req *wire.Message) (*wire.Message, error) {
	if l.isQuit() {
		return nil, fmt.Errorf("schooner: line %d already quit", l.id)
	}
	g, gen := l.mgrc()
	timeout := l.currentPolicy().Timeout
	req.Seq = l.nextSeq()
	resp, err := g.call(req, timeout)
	if err == nil || !g.dead() {
		return resp, err
	}
	fresh, _, aerr := l.reattach(gen, false)
	if aerr != nil {
		return resp, err // surface the original (stale) failure
	}
	req.Seq = l.nextSeq()
	return fresh.call(req, timeout)
}

// reattach re-binds the line to a live Manager, trying every
// configured host in order with KAttachLine. gen is the connection
// generation the caller observed dead; when another goroutine already
// swapped in a newer connection, that one is returned without dialing.
// forQuit lets IQuit reattach after it has marked the line quit.
func (l *Line) reattach(gen int, forQuit bool) (*demuxConn, int, error) {
	l.mu.Lock()
	if l.quit && !forQuit {
		l.mu.Unlock()
		return nil, 0, fmt.Errorf("schooner: line %d already quit", l.id)
	}
	if l.mgrGen != gen {
		g, n := l.mgr, l.mgrGen
		l.mu.Unlock()
		return g, n, nil
	}
	l.mu.Unlock()
	var lastErr error
	for _, mh := range l.client.managerHosts() {
		conn, err := l.client.Transport.Dial(l.client.Host, mh+":"+ManagerPort)
		if err != nil {
			lastErr = err
			continue
		}
		if err := conn.Send(&wire.Message{Kind: wire.KAttachLine, Line: l.id, Name: l.module}); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		resp, err := recvTimeout(conn, l.currentPolicy().Timeout)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		if resp.Kind != wire.KLineOK {
			conn.Close()
			lastErr = fmt.Errorf("schooner: attach to %s failed: %s", mh, resp.Err)
			continue
		}
		fresh := newDemuxConn(conn)
		l.mu.Lock()
		if l.mgrGen != gen {
			// Lost the race: another goroutine reattached first.
			g, n := l.mgr, l.mgrGen
			l.mu.Unlock()
			fresh.Close()
			return g, n, nil
		}
		old := l.mgr
		l.mgr = fresh
		l.mgrGen = gen + 1
		n := l.mgrGen
		l.mu.Unlock()
		old.Close()
		trace.Count("schooner.client.reattaches")
		flight.Record(flight.Event{Kind: flight.KindRebind, Component: "client",
			Host: l.client.Host, Line: l.id, Name: l.module, Detail: "manager " + mh})
		logx.For("client", l.client.Host).Info("line reattached to manager",
			"line", l.id, "manager", mh)
		return fresh, n, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("schooner: no manager hosts configured")
	}
	return nil, 0, lastErr
}

// StartRemote asks the Manager to instantiate the procedure file at
// path on the given machine and add its exports to this line. The
// machine and path are exactly what the user selects with the module's
// radio-button and type-in widgets.
func (l *Line) StartRemote(path, machineName string) error {
	var sp *trace.Span
	if trace.Enabled() {
		sp = trace.StartSpan("start "+path+" on "+machineName, l.client.Host)
		defer sp.End()
	}
	req := &wire.Message{Kind: wire.KStartProc, Line: l.id, Name: path, Str: machineName}
	inject(req, sp)
	_, err := l.managerCall(req)
	return err
}

// StartShared asks the Manager to instantiate the procedure file as a
// shared procedure, available to every line. The process is not part
// of this line and survives this line's shutdown.
func (l *Line) StartShared(path, machineName string) error {
	var sp *trace.Span
	if trace.Enabled() {
		sp = trace.StartSpan("start shared "+path+" on "+machineName, l.client.Host)
		defer sp.End()
	}
	req := &wire.Message{Kind: wire.KStartProc, Line: 0, Name: path, Str: machineName}
	inject(req, sp)
	_, err := l.managerCall(req)
	return err
}

// Import registers the import specification this module was compiled
// against for one procedure; Call uses it for marshaling and the
// Manager type-checks it against the export at bind time.
func (l *Line) Import(spec *uts.ProcSpec) error {
	if spec == nil {
		return fmt.Errorf("schooner: nil import specification")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.imports[spec.Name]; dup {
		return fmt.Errorf("schooner: import %q already registered in line %d", spec.Name, l.id)
	}
	l.imports[spec.Name] = spec.Clone(false)
	return nil
}

// ImportFile registers every import declaration in a specification
// file.
func (l *Line) ImportFile(f *uts.SpecFile) error {
	for _, p := range f.Imports() {
		if err := l.Import(p); err != nil {
			return err
		}
	}
	return nil
}

// lookup binds a procedure name by asking the Manager. When several
// goroutines miss the cache simultaneously, the first to install a
// binding wins and the others adopt it. The lookup round trip is
// traced as a child of sp, so rebinds show up on the call's timeline.
func (l *Line) lookup(name string, imp *uts.ProcSpec, sp *trace.Span) (*binding, error) {
	var ls *trace.Span
	if sp != nil {
		ls = sp.Child("lookup "+name, l.client.Host)
	}
	req := &wire.Message{
		Kind: wire.KLookup, Line: l.id, Name: name,
		Data: []byte(imp.String()),
	}
	inject(req, ls)
	resp, err := l.managerCall(req)
	if ls != nil {
		if err != nil {
			ls.Annotate("error", err.Error())
		}
		ls.End()
	}
	if err != nil {
		return nil, err
	}
	ctx := ls.Context()
	if ctx.Trace == 0 {
		ctx = sp.Context()
	}
	flight.Record(flight.Event{Kind: flight.KindBind, Component: "client",
		Host: l.client.Host, Line: l.id, Trace: ctx.Trace, Span: ctx.Span,
		Name: name, Detail: resp.Str})
	nb := &binding{addr: resp.Str, exportName: resp.Name}
	l.mu.Lock()
	if cur, ok := l.bindings[name]; ok {
		l.mu.Unlock()
		return cur, nil
	}
	l.bindings[name] = nb
	l.mu.Unlock()
	return nb, nil
}

// invalidate drops a stale binding from the cache (unless a concurrent
// rebind already replaced it) and closes its pooled connections.
func (l *Line) invalidate(name string, b *binding) {
	l.mu.Lock()
	if l.bindings[name] == b {
		delete(l.bindings, name)
	}
	l.mu.Unlock()
	b.markStale()
	flight.Record(flight.Event{Kind: flight.KindRebind, Component: "client",
		Host: l.client.Host, Line: l.id, Name: name, Detail: b.addr})
}

// Call invokes the named remote procedure with the given arguments
// bound to its in-parameters (val and var, in declaration order), and
// returns the out-parameters (res and var, in declaration order).
//
// The data path models the full heterogeneous conversion: arguments
// pass through this machine's native representation, the UTS
// interchange format, and the remote machine's native representation;
// results make the reverse trip.
//
// Fault tolerance: every attempt is bounded by the line's CallPolicy
// deadline, so a Call can never hang on a lost message or a partition.
// Transient wire failures — transport errors, timeouts, terminated
// processes, unreachable mappings — invalidate the cached binding,
// re-ask the Manager (the lazy cache-invalidation protocol of section
// 4.2, which also discovers Manager-initiated failover placements) and
// retry with jittered exponential backoff, up to the policy's retry
// budget. Application errors from the procedure are surfaced
// immediately and never retried.
//
// Concurrency: calls from multiple goroutines proceed in parallel on
// the wire; no lock is held across the round trip or the backoff
// sleep.
//
// Tracing: when a span recorder is installed (trace.Enabled), every
// call allocates a root span carried to the remote side in the wire
// envelope, with one child span per network attempt and annotations
// for retries, rebinds, timeouts, and failover rebinds. Disabled
// tracing costs one atomic load and no allocations.
func (l *Line) Call(name string, args ...uts.Value) ([]uts.Value, error) {
	start := clk().Now()
	var sp *trace.Span
	if trace.Enabled() {
		sp = trace.StartSpan("call "+name, l.client.Host)
	}
	res, err := l.call(name, args, sp)
	d := clk().Since(start)
	trace.Observe("schooner.client.call", d)
	if tseries.Enabled() {
		// Tail-latency exemplar capture: the active sampler keeps the
		// slowest calls of each window with their span IDs, so a p99
		// spike in a report links back to the exact spans.
		ctx := sp.Context()
		tseries.Observe("schooner.client.call", d, ctx.Trace, ctx.Span)
		if sp != nil {
			tseries.Observe(trace.LKey("schooner.client.call", trace.Label{Key: "proc", Value: name}), d, ctx.Trace, ctx.Span)
		}
	}
	if sp != nil {
		trace.Observe(trace.LKey("schooner.client.call", trace.Label{Key: "proc", Value: name}), d)
		trace.Count(trace.LKey("schooner.client.calls", trace.Label{Key: "line", Value: strconv.FormatUint(uint64(l.id), 10)}))
		if err != nil {
			sp.Annotate("error", err.Error())
		}
		sp.End()
	}
	if err != nil {
		trace.Count("schooner.client.call_failures")
		ctx := sp.Context()
		flight.Record(flight.Event{Kind: flight.KindCallFail, Component: "client",
			Host: l.client.Host, Line: l.id, Trace: ctx.Trace, Span: ctx.Span,
			Name: name, Detail: err.Error()})
		logx.For("client", l.client.Host).Warn("call failed",
			append([]any{"proc", name, "line", l.id, "err", err}, logx.Span(ctx)...)...)
		return nil, err
	}
	return res, nil
}

// Pending is an in-flight asynchronous call started with Go.
type Pending struct {
	done chan struct{}
	res  []uts.Value
	err  error
}

// Wait blocks until the call completes and returns its results, with
// the same semantics as a synchronous Call.
func (p *Pending) Wait() ([]uts.Value, error) {
	<-p.done
	return p.res, p.err
}

// Done returns a channel that is closed when the call has completed,
// for select-based composition.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Go begins an asynchronous call on the line and returns immediately.
// The call runs with the full Call machinery — deadlines, retries,
// stale-cache rebind, failover discovery — and overlaps with any other
// calls in flight on the line.
func (l *Line) Go(name string, args ...uts.Value) *Pending {
	p := &Pending{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.res, p.err = l.Call(name, args...)
	}()
	return p
}

// call is the retry machine behind Call and Go. sp is the call's root
// span (nil when tracing is disabled): each network attempt becomes a
// child of it, so a retried call keeps one trace id across attempts
// and a failover-rebound attempt stays linked to the original parent.
func (l *Line) call(name string, args []uts.Value, sp *trace.Span) ([]uts.Value, error) {
	imp, pol, data, err := l.prepare(name, args)
	if err != nil {
		return nil, err
	}

	var lastErr error
	rebinding := false
	prevAddr := "" // address of the binding the last failure used
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			trace.Count("schooner.client.retries")
			ctx := sp.Context()
			flight.Record(flight.Event{Kind: flight.KindCallRetry, Component: "client",
				Host: l.client.Host, Line: l.id, Trace: ctx.Trace, Span: ctx.Span,
				Name: name, Detail: lastErr.Error()})
			logx.For("client", l.client.Host).Debug("retrying call",
				append([]any{"proc", name, "attempt", attempt, "err", lastErr}, logx.Span(ctx)...)...)
			if sp != nil {
				sp.Annotate("retry."+strconv.Itoa(attempt), lastErr.Error())
				trace.Count(trace.LKey("schooner.client.retries", trace.Label{Key: "proc", Value: name}))
			}
			// The backoff sleep runs with no locks held: other
			// goroutines' calls on this line proceed during it.
			clk().Sleep(pol.backoffFor(attempt - 1))
		}
		l.mu.Lock()
		if l.quit {
			l.mu.Unlock()
			return nil, fmt.Errorf("schooner: line %d already quit", l.id)
		}
		b := l.bindings[name]
		l.mu.Unlock()
		if b == nil {
			if rebinding {
				trace.Count("schooner.client.rebinds")
			}
			b, err = l.lookup(name, imp, sp)
			if err == nil && sp != nil && rebinding {
				sp.Annotate("rebind", "rebound to "+b.addr)
				if prevAddr != "" && b.addr != prevAddr {
					// The name came back mapped somewhere else: a Move
					// or a Manager failover placed it on a new machine.
					sp.Annotate("failover", prevAddr+" -> "+b.addr)
				}
			}
			if err != nil {
				if !isStale(err) {
					return nil, err
				}
				// A transient lookup failure — the Manager briefly
				// unreachable, or the name mapped to a machine that is
				// mid-crash — is retried exactly like a stale call.
				// This is the first-bind retry path; it counts toward
				// rebinds on the next attempt via the flag above.
				lastErr = err
				rebinding = true
				if attempt >= pol.MaxRetries {
					break
				}
				continue
			}
		}
		// Default path: the binding's shared pipelined connection, on
		// which this attempt overlaps every other in-flight call.
		// NoPipeline leases a private connection per attempt instead.
		var conn wire.Conn
		var pc *demuxConn
		if pol.NoPipeline {
			conn, err = b.lease(l.client.Transport, l.client.Host, name)
		} else {
			pc, err = b.pipeline(l.client.Transport, l.client.Host, name)
		}
		if err != nil {
			lastErr = err
			prevAddr = b.addr
			l.invalidate(name, b)
			trace.Count("schooner.client.stale")
			rebinding = true
			if attempt >= pol.MaxRetries {
				break
			}
			continue
		}
		var att *trace.Span
		var attStart time.Time
		if sp != nil {
			att = sp.Child("attempt "+name, l.client.Host)
			att.Annotate("addr", b.addr)
			attStart = clk().Now()
		}
		// The flight recorder sees every attempt even when tracing is
		// off: one ring append, no allocation (all fields are strings
		// the call already holds).
		ctx := sp.Context()
		flight.Record(flight.Event{Kind: flight.KindCallAttempt, Component: "client",
			Host: l.client.Host, Line: l.id, Trace: ctx.Trace, Span: ctx.Span,
			Name: name, Detail: b.addr})
		var reply []byte
		if pc != nil {
			reply, err = l.callPipelined(pc, b, imp, data, pol.Timeout, att)
		} else {
			reply, err = l.callOnce(conn, b, imp, data, pol.Timeout, att)
		}
		if att != nil {
			if err != nil {
				att.Annotate("error", err.Error())
			} else {
				host := addrHost(b.addr)
				d := clk().Since(attStart)
				trace.Observe(trace.LKey("schooner.client.call", trace.Label{Key: "host", Value: host}), d)
				trace.Count(trace.LKey("schooner.client.calls", trace.Label{Key: "host", Value: host}))
				if tseries.Enabled() {
					actx := att.Context()
					tseries.Observe(trace.LKey("schooner.client.call", trace.Label{Key: "host", Value: host}), d, actx.Trace, actx.Span)
				}
			}
			att.End()
		}
		if err == nil {
			if conn != nil {
				b.release(conn)
			}
			results, err := l.decodeResults(imp, reply)
			if err != nil {
				return nil, err
			}
			trace.Count("schooner.client.calls")
			return results, nil
		}
		if conn != nil {
			conn.Close()
		}
		if !isStale(err) {
			return nil, err
		}
		// Stale cache: the procedure moved, died, or the wire failed.
		// Drop the binding; the next attempt re-asks the Manager.
		lastErr = err
		prevAddr = b.addr
		l.invalidate(name, b)
		trace.Count("schooner.client.stale")
		rebinding = true
		if attempt >= pol.MaxRetries {
			break
		}
	}
	return nil, fmt.Errorf("schooner: call to %q failed after %d attempts: %w", name, pol.MaxRetries+1, lastErr)
}

// prepare is the marshaling front half shared by Call and GoBatch: it
// resolves the import specification, converts the arguments through
// this machine's native representation into the UTS interchange
// format, and returns the line's effective policy alongside.
func (l *Line) prepare(name string, args []uts.Value) (*uts.ProcSpec, CallPolicy, []byte, error) {
	l.mu.Lock()
	if l.quit {
		l.mu.Unlock()
		return nil, CallPolicy{}, nil, fmt.Errorf("schooner: line %d already quit", l.id)
	}
	imp, ok := l.imports[name]
	pol := l.policy.withDefaults()
	l.mu.Unlock()
	if !ok {
		return nil, pol, nil, fmt.Errorf("schooner: no import specification registered for %q", name)
	}
	arch, err := l.client.arch()
	if err != nil {
		return nil, pol, nil, err
	}
	ins := imp.InParams()
	if len(args) != len(ins) {
		return nil, pol, nil, fmt.Errorf("schooner: %s takes %d in-parameters, got %d", name, len(ins), len(args))
	}
	// Outbound conversion: native -> UTS.
	conv := make([]uts.Value, len(args))
	for i, a := range args {
		v, err := arch.NativeRoundTrip(a)
		if err != nil {
			return nil, pol, nil, fmt.Errorf("schooner: parameter %q: %w", ins[i].Name, err)
		}
		conv[i] = v
	}
	data, err := uts.EncodeParams(nil, ins, conv)
	if err != nil {
		return nil, pol, nil, err
	}
	return imp, pol, data, nil
}

// decodeResults is the unmarshaling back half shared by Call and
// GoBatch: UTS interchange bytes -> this machine's native values.
func (l *Line) decodeResults(imp *uts.ProcSpec, reply []byte) ([]uts.Value, error) {
	arch, err := l.client.arch()
	if err != nil {
		return nil, err
	}
	outs := imp.OutParams()
	results, err := uts.DecodeParams(reply, outs)
	if err != nil {
		return nil, err
	}
	for i := range results {
		v, err := arch.NativeRoundTrip(results[i])
		if err != nil {
			return nil, fmt.Errorf("schooner: result %q: %w", outs[i].Name, err)
		}
		results[i] = v
	}
	return results, nil
}

// callOnce performs one call attempt over a leased connection, bounded
// by the per-attempt deadline. The procedure process serves requests
// one at a time per connection, so the next message on the connection
// is the reply to this request. sp is the attempt span whose context
// rides in the request envelope (nil when tracing is disabled).
func (l *Line) callOnce(conn wire.Conn, b *binding, imp *uts.ProcSpec, data []byte, timeout time.Duration, sp *trace.Span) ([]byte, error) {
	req := &wire.Message{
		Kind: wire.KCall, Seq: l.nextSeq(), Line: l.id,
		Name: b.exportName, Str: imp.Signature(), Data: data,
	}
	inject(req, sp)
	if err := conn.Send(req); err != nil {
		return nil, &staleError{err}
	}
	trace.Count("schooner.client.rpcs")
	resp, err := recvTimeout(conn, timeout)
	if err != nil {
		if errors.As(err, new(*timeoutError)) {
			trace.Count("schooner.client.timeouts")
			sp.Annotate("timeout", timeout.String())
		}
		return nil, &staleError{err}
	}
	return callReplyData(resp)
}

// callPipelined performs one call attempt on the binding's shared
// demultiplexed connection: the request's sequence number matches it to
// its reply among every other call in flight on the connection. A
// timeout abandons the reply but leaves the connection open for the
// other in-flight calls (the caller invalidates the binding, which
// closes it for everyone — the retry machinery re-binds).
func (l *Line) callPipelined(pc *demuxConn, b *binding, imp *uts.ProcSpec, data []byte, timeout time.Duration, sp *trace.Span) ([]byte, error) {
	req := &wire.Message{
		Kind: wire.KCall, Seq: l.nextSeq(), Line: l.id,
		Name: b.exportName, Str: imp.Signature(), Data: data,
	}
	inject(req, sp)
	resp, err := pc.exchange(req, timeout)
	if err != nil {
		if errors.As(err, new(*timeoutError)) {
			trace.Count("schooner.client.timeouts")
			sp.Annotate("timeout", timeout.String())
		}
		return nil, err
	}
	return callReplyData(resp)
}

// callReplyData interprets a procedure call's reply message: a KError
// carrying the terminated sentinel is stale (the process died under a
// move or crash — rebind), any other KError is an application error.
func callReplyData(resp *wire.Message) ([]byte, error) {
	if resp.Kind == wire.KError {
		if resp.Err == ErrProcessTerminated {
			return nil, &staleError{fmt.Errorf("%s", resp.Err)}
		}
		return nil, fmt.Errorf("%s", resp.Err)
	}
	if resp.Kind != wire.KReply {
		return nil, fmt.Errorf("schooner: unexpected %v reply", resp.Kind)
	}
	return resp.Data, nil
}

// staleError marks failures that may be cured by re-binding.
type staleError struct{ err error }

func (e *staleError) Error() string { return e.err.Error() }
func (e *staleError) Unwrap() error { return e.err }

// isStale reports whether an error (anywhere in its chain) marks a
// stale binding. errors.As, not a direct type assertion: callers wrap
// stale errors with context, and a wrapped stale error must still
// trigger the rebind path.
func isStale(err error) bool {
	var se *staleError
	return errors.As(err, &se)
}

// FlushCache drops every cached procedure binding, forcing the next
// call to each procedure to re-ask the Manager. Exists for the
// name-cache ablation experiments; normal programs never need it.
func (l *Line) FlushCache() {
	l.mu.Lock()
	old := l.bindings
	l.bindings = make(map[string]*binding)
	l.mu.Unlock()
	for _, b := range old {
		b.markStale()
	}
}

// Move asks the Manager to relocate the named procedure's process to a
// new machine. With withState set, the procedure's declared state
// variables are transferred; otherwise the procedure must be stateless
// (the fresh copy starts from its initial state).
func (l *Line) Move(name, newMachine string, withState bool) error {
	var data []byte
	if withState {
		data = []byte("state")
	}
	var sp *trace.Span
	if trace.Enabled() {
		sp = trace.StartSpan("move "+name+" to "+newMachine, l.client.Host)
		defer sp.End()
	}
	req := &wire.Message{Kind: wire.KMove, Line: l.id, Name: name, Str: newMachine, Data: data}
	inject(req, sp)
	_, err := l.managerCall(req)
	// The cached binding is now stale. As in the paper, caches update
	// lazily: the next call to the old location fails, resulting in an
	// automatic re-ask of the Manager.
	return err
}

// MoveShared relocates a shared procedure; all lines' future calls
// follow it.
func (l *Line) MoveShared(name, newMachine string, withState bool) error {
	var data []byte
	if withState {
		data = []byte("state")
	}
	_, err := l.managerCall(&wire.Message{Kind: wire.KMove, Line: 0, Name: name, Str: newMachine, Data: data})
	return err
}

// IQuit is sch_i_quit: the module is being destroyed. The Manager
// shuts down the remote procedures of this line only; other lines and
// shared procedures are unaffected. Calls still in flight when IQuit
// runs fail with a quit or connection error.
func (l *Line) IQuit() error {
	l.mu.Lock()
	if l.quit {
		l.mu.Unlock()
		return nil
	}
	l.quit = true
	l.seq++
	seq := l.seq
	timeout := l.policy.withDefaults().Timeout
	old := l.bindings
	l.bindings = make(map[string]*binding)
	g, gen := l.mgr, l.mgrGen
	l.mu.Unlock()
	for _, b := range old {
		b.markStale()
	}
	_, err := g.call(&wire.Message{Kind: wire.KQuitLine, Line: l.id, Seq: seq}, timeout)
	if err != nil && g.dead() {
		// The connection died under the quit (Manager crash or standby
		// takeover); reattach and quit the line at whichever Manager
		// now owns it.
		if fresh, _, aerr := l.reattach(gen, true); aerr == nil {
			l.mu.Lock()
			l.seq++
			seq = l.seq
			l.mu.Unlock()
			_, err = fresh.call(&wire.Message{Kind: wire.KQuitLine, Line: l.id, Seq: seq}, timeout)
		}
	}
	cur, _ := l.mgrc()
	cur.Close()
	return err
}

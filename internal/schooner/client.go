package schooner

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"npss/internal/machine"
	"npss/internal/trace"
	"npss/internal/uts"
	"npss/internal/wire"
)

// Client is the Schooner communication library as linked into one
// module (for example an AVS module): it knows which machine it runs
// on and where the Manager lives.
type Client struct {
	Transport Transport
	// Host is the machine this module executes on.
	Host string
	// ManagerHost is the machine the persistent Manager runs on.
	ManagerHost string
	// Policy bounds calls on every line this client opens. The zero
	// value applies the package defaults (see CallPolicy).
	Policy CallPolicy
}

// arch resolves the client's own architecture.
func (c *Client) arch() (*machine.Arch, error) {
	return c.Transport.HostArch(c.Host)
}

// ContactSchx registers the module with the Manager and opens a new
// line — the call a module makes from its compute function the first
// time it is scheduled. The returned Line is the module's handle for
// starting, calling, moving, and shutting down remote procedures.
func (c *Client) ContactSchx(module string) (*Line, error) {
	conn, err := c.Transport.Dial(c.Host, c.ManagerHost+":"+ManagerPort)
	if err != nil {
		return nil, fmt.Errorf("schooner: cannot reach manager on %s: %w", c.ManagerHost, err)
	}
	if err := conn.Send(&wire.Message{Kind: wire.KRegisterLine, Name: module}); err != nil {
		conn.Close()
		return nil, err
	}
	resp, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if resp.Kind != wire.KLineOK {
		conn.Close()
		return nil, fmt.Errorf("schooner: register failed: %s", resp.Err)
	}
	ln := &Line{
		client:   c,
		id:       resp.Line,
		module:   module,
		mgr:      conn,
		policy:   c.Policy,
		imports:  make(map[string]*uts.ProcSpec),
		bindings: make(map[string]*binding),
	}
	return ln, nil
}

// Line is one thread of control in a Schooner program: a sequential
// execution of procedures, some of which may be located on remote
// machines. Lines execute independently of each other with no
// synchronization; procedure names are unique within a line but may
// repeat across lines. A Line's methods must be called from one
// goroutine at a time (a line is, by definition, sequential).
type Line struct {
	client *Client
	id     uint32
	module string

	mu       sync.Mutex
	mgr      wire.Conn
	seq      uint32
	policy   CallPolicy
	imports  map[string]*uts.ProcSpec
	bindings map[string]*binding
	quit     bool
}

// SetCallPolicy overrides the line's call policy (inherited from the
// client at ContactSchx time).
func (l *Line) SetCallPolicy(p CallPolicy) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.policy = p
}

// binding caches the location of one remote procedure: the paper's
// per-procedure name cache, refreshed lazily when a call to a stale
// address fails after a move.
type binding struct {
	addr       string
	exportName string
	conn       wire.Conn
}

// ID returns the Manager-assigned line id.
func (l *Line) ID() uint32 { return l.id }

// Module returns the module name the line registered under.
func (l *Line) Module() string { return l.module }

// managerCall performs one request/response on the manager connection,
// bounded by the line's call deadline. Transport failures and timeouts
// are transient (wrapped as stale, so callers on the retry path try
// again); a KError from the Manager is an application error and final.
func (l *Line) managerCall(req *wire.Message) (*wire.Message, error) {
	if l.quit {
		return nil, fmt.Errorf("schooner: line %d already quit", l.id)
	}
	l.seq++
	req.Seq = l.seq
	if err := l.mgr.Send(req); err != nil {
		return nil, &staleError{err}
	}
	resp, err := recvTimeout(l.mgr, l.policy.withDefaults().Timeout)
	if err != nil {
		return nil, &staleError{err}
	}
	if resp.Kind == wire.KError {
		return nil, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

// StartRemote asks the Manager to instantiate the procedure file at
// path on the given machine and add its exports to this line. The
// machine and path are exactly what the user selects with the module's
// radio-button and type-in widgets.
func (l *Line) StartRemote(path, machineName string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.managerCall(&wire.Message{Kind: wire.KStartProc, Line: l.id, Name: path, Str: machineName})
	return err
}

// StartShared asks the Manager to instantiate the procedure file as a
// shared procedure, available to every line. The process is not part
// of this line and survives this line's shutdown.
func (l *Line) StartShared(path, machineName string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.managerCall(&wire.Message{Kind: wire.KStartProc, Line: 0, Name: path, Str: machineName})
	return err
}

// Import registers the import specification this module was compiled
// against for one procedure; Call uses it for marshaling and the
// Manager type-checks it against the export at bind time.
func (l *Line) Import(spec *uts.ProcSpec) error {
	if spec == nil {
		return fmt.Errorf("schooner: nil import specification")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.imports[spec.Name]; dup {
		return fmt.Errorf("schooner: import %q already registered in line %d", spec.Name, l.id)
	}
	l.imports[spec.Name] = spec.Clone(false)
	return nil
}

// ImportFile registers every import declaration in a specification
// file.
func (l *Line) ImportFile(f *uts.SpecFile) error {
	for _, p := range f.Imports() {
		if err := l.Import(p); err != nil {
			return err
		}
	}
	return nil
}

// lookup binds a procedure name, asking the Manager and opening a
// connection to the procedure process.
func (l *Line) lookup(name string, imp *uts.ProcSpec) (*binding, error) {
	resp, err := l.managerCall(&wire.Message{
		Kind: wire.KLookup, Line: l.id, Name: name,
		Data: []byte(imp.String()),
	})
	if err != nil {
		return nil, err
	}
	conn, err := l.client.Transport.Dial(l.client.Host, resp.Str)
	if err != nil {
		// Transient: the mapped host may be mid-crash, with the
		// Manager's failover about to repoint the name; retry.
		return nil, &staleError{fmt.Errorf("schooner: procedure %q mapped to unreachable %s: %w", name, resp.Str, err)}
	}
	b := &binding{addr: resp.Str, exportName: resp.Name, conn: conn}
	l.bindings[name] = b
	return b, nil
}

// invalidate drops a stale binding.
func (l *Line) invalidate(name string, b *binding) {
	if b.conn != nil {
		b.conn.Close()
	}
	delete(l.bindings, name)
}

// Call invokes the named remote procedure with the given arguments
// bound to its in-parameters (val and var, in declaration order), and
// returns the out-parameters (res and var, in declaration order).
//
// The data path models the full heterogeneous conversion: arguments
// pass through this machine's native representation, the UTS
// interchange format, and the remote machine's native representation;
// results make the reverse trip.
//
// Fault tolerance: every attempt is bounded by the line's CallPolicy
// deadline, so a Call can never hang on a lost message or a partition.
// Transient wire failures — transport errors, timeouts, terminated
// processes, unreachable mappings — invalidate the cached binding,
// re-ask the Manager (the lazy cache-invalidation protocol of section
// 4.2, which also discovers Manager-initiated failover placements) and
// retry with jittered exponential backoff, up to the policy's retry
// budget. Application errors from the procedure are surfaced
// immediately and never retried.
func (l *Line) Call(name string, args ...uts.Value) ([]uts.Value, error) {
	start := time.Now()
	defer func() { trace.Observe("schooner.client.call", time.Since(start)) }()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.quit {
		return nil, fmt.Errorf("schooner: line %d already quit", l.id)
	}
	imp, ok := l.imports[name]
	if !ok {
		return nil, fmt.Errorf("schooner: no import specification registered for %q", name)
	}
	arch, err := l.client.arch()
	if err != nil {
		return nil, err
	}
	ins := imp.InParams()
	if len(args) != len(ins) {
		return nil, fmt.Errorf("schooner: %s takes %d in-parameters, got %d", name, len(ins), len(args))
	}
	// Outbound conversion: native -> UTS.
	conv := make([]uts.Value, len(args))
	for i, a := range args {
		v, err := arch.NativeRoundTrip(a)
		if err != nil {
			return nil, fmt.Errorf("schooner: parameter %q: %w", ins[i].Name, err)
		}
		conv[i] = v
	}
	data, err := uts.EncodeParams(nil, ins, conv)
	if err != nil {
		return nil, err
	}

	pol := l.policy.withDefaults()
	var lastErr error
	rebinding := false
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			trace.Count("schooner.client.retries")
			time.Sleep(pol.backoffFor(attempt - 1))
		}
		b := l.bindings[name]
		if b == nil {
			if rebinding {
				trace.Count("schooner.client.rebinds")
			}
			b, err = l.lookup(name, imp)
			if err != nil {
				if !isStale(err) {
					return nil, err
				}
				lastErr = err
				if attempt >= pol.MaxRetries {
					break
				}
				continue
			}
		}
		reply, err := l.callOnce(b, imp, data, pol.Timeout)
		if err == nil {
			// Inbound conversion: UTS -> native.
			outs := imp.OutParams()
			results, err := uts.DecodeParams(reply, outs)
			if err != nil {
				return nil, err
			}
			for i := range results {
				v, err := arch.NativeRoundTrip(results[i])
				if err != nil {
					return nil, fmt.Errorf("schooner: result %q: %w", outs[i].Name, err)
				}
				results[i] = v
			}
			trace.Count("schooner.client.calls")
			return results, nil
		}
		if !isStale(err) {
			return nil, err
		}
		// Stale cache: the procedure moved, died, or the wire failed.
		// Drop the binding; the next attempt re-asks the Manager.
		lastErr = err
		l.invalidate(name, b)
		trace.Count("schooner.client.stale")
		rebinding = true
		if attempt >= pol.MaxRetries {
			break
		}
	}
	return nil, fmt.Errorf("schooner: call to %q failed after %d attempts: %w", name, pol.MaxRetries+1, lastErr)
}

// callOnce performs one call attempt over a binding, bounded by the
// per-attempt deadline.
func (l *Line) callOnce(b *binding, imp *uts.ProcSpec, data []byte, timeout time.Duration) ([]byte, error) {
	l.seq++
	req := &wire.Message{
		Kind: wire.KCall, Seq: l.seq, Line: l.id,
		Name: b.exportName, Str: imp.Signature(), Data: data,
	}
	if err := b.conn.Send(req); err != nil {
		return nil, &staleError{err}
	}
	resp, err := recvTimeout(b.conn, timeout)
	if err != nil {
		if errors.As(err, new(*timeoutError)) {
			trace.Count("schooner.client.timeouts")
		}
		return nil, &staleError{err}
	}
	if resp.Kind == wire.KError {
		if resp.Err == ErrProcessTerminated {
			return nil, &staleError{fmt.Errorf("%s", resp.Err)}
		}
		return nil, fmt.Errorf("%s", resp.Err)
	}
	if resp.Kind != wire.KReply {
		return nil, fmt.Errorf("schooner: unexpected %v reply", resp.Kind)
	}
	return resp.Data, nil
}

// staleError marks failures that may be cured by re-binding.
type staleError struct{ err error }

func (e *staleError) Error() string { return e.err.Error() }
func (e *staleError) Unwrap() error { return e.err }

// isStale reports whether an error (anywhere in its chain) marks a
// stale binding. errors.As, not a direct type assertion: callers wrap
// stale errors with context, and a wrapped stale error must still
// trigger the rebind path.
func isStale(err error) bool {
	var se *staleError
	return errors.As(err, &se)
}

// FlushCache drops every cached procedure binding, forcing the next
// call to each procedure to re-ask the Manager. Exists for the
// name-cache ablation experiments; normal programs never need it.
func (l *Line) FlushCache() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for name, b := range l.bindings {
		l.invalidate(name, b)
	}
}

// Move asks the Manager to relocate the named procedure's process to a
// new machine. With withState set, the procedure's declared state
// variables are transferred; otherwise the procedure must be stateless
// (the fresh copy starts from its initial state).
func (l *Line) Move(name, newMachine string, withState bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var data []byte
	if withState {
		data = []byte("state")
	}
	_, err := l.managerCall(&wire.Message{Kind: wire.KMove, Line: l.id, Name: name, Str: newMachine, Data: data})
	// The cached binding is now stale. As in the paper, caches update
	// lazily: the next call to the old location fails, resulting in an
	// automatic re-ask of the Manager.
	return err
}

// MoveShared relocates a shared procedure; all lines' future calls
// follow it.
func (l *Line) MoveShared(name, newMachine string, withState bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var data []byte
	if withState {
		data = []byte("state")
	}
	_, err := l.managerCall(&wire.Message{Kind: wire.KMove, Line: 0, Name: name, Str: newMachine, Data: data})
	return err
}

// IQuit is sch_i_quit: the module is being destroyed. The Manager
// shuts down the remote procedures of this line only; other lines and
// shared procedures are unaffected.
func (l *Line) IQuit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.quit {
		return nil
	}
	_, err := l.managerCall(&wire.Message{Kind: wire.KQuitLine, Line: l.id})
	l.quit = true
	for name, b := range l.bindings {
		l.invalidate(name, b)
	}
	l.mgr.Close()
	return err
}

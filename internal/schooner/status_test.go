package schooner

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"npss/internal/critpath"
	"npss/internal/flight"
	"npss/internal/trace"
	"npss/internal/uts"
)

// TestStatusUnderConcurrentChurn hammers the introspection endpoints
// while lines spawn, call, migrate, and quit concurrently: StatusReport
// and QueryStatus must stay consistent (and data-race free under
// -race) no matter when they sample the Manager's tables.
func TestStatusUnderConcurrentChurn(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	prev := trace.Swap(trace.NewSet())
	defer trace.Swap(prev)

	var stop atomic.Bool
	var wg sync.WaitGroup
	const churners = 3
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hosts := []string{"sgi-lerc", "rs6000"}
			for i := 0; !stop.Load(); i++ {
				ln, err := d.client("sgi-lerc").ContactSchx("churn")
				if err != nil {
					t.Errorf("churner %d contact: %v", w, err)
					return
				}
				if err := ln.StartRemote("/npss/adder", hosts[i%2]); err != nil {
					t.Errorf("churner %d start: %v", w, err)
					ln.IQuit()
					return
				}
				ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
				if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(2)); err != nil {
					t.Errorf("churner %d call: %v", w, err)
					ln.IQuit()
					return
				}
				// Migrate the process mid-life on some iterations.
				if i%3 == 0 {
					if err := ln.Move("add", hosts[(i+1)%2], false); err != nil {
						t.Errorf("churner %d move: %v", w, err)
						ln.IQuit()
						return
					}
				}
				ln.IQuit()
			}
		}(w)
	}

	for i := 0; i < 40; i++ {
		report := d.mgr.StatusReport()
		if !strings.Contains(report, "schooner manager on avs-sparc") {
			t.Fatalf("in-process report header missing:\n%s", report)
		}
		report, err := QueryStatus(d.tr, "rs6000", "avs-sparc")
		if err != nil {
			t.Fatalf("QueryStatus during churn: %v", err)
		}
		if !strings.Contains(report, "-- lines --") {
			t.Fatalf("remote report sections missing:\n%s", report)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestStatusQueriesAgainstDeadManager pins the error paths: every
// introspection query against an unreachable Manager host reports the
// failure instead of hanging or panicking.
func TestStatusQueriesAgainstDeadManager(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.net.SetHostDown("avs-sparc", true)
	defer d.net.SetHostDown("avs-sparc", false)

	if _, err := QueryStatus(d.tr, "sgi-lerc", "avs-sparc"); err == nil {
		t.Error("QueryStatus against dead manager succeeded")
	}
	if _, err := QueryMetrics(d.tr, "sgi-lerc", "avs-sparc"); err == nil {
		t.Error("QueryMetrics against dead manager succeeded")
	}
	if _, err := QueryFlight(d.tr, "sgi-lerc", "avs-sparc"); err == nil {
		t.Error("QueryFlight against dead manager succeeded")
	}
	// Unknown hosts fail too (no route at all).
	if _, err := QueryStatus(d.tr, "sgi-lerc", "no-such-host"); err == nil {
		t.Error("QueryStatus against unknown host succeeded")
	}
}

// TestQueryMetricsRoundTrip drives calls through a deployment, fetches
// the Manager's and a Server's metric snapshots over the wire, and
// merges them into the cluster roll-up the -status query prints.
func TestQueryMetricsRoundTrip(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	prev := trace.Swap(trace.NewSet())
	defer trace.Swap(prev)

	ln, err := d.client("sgi-lerc").ContactSchx("metrics-module")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "rs6000"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	mgrSnap, err := QueryMetrics(d.tr, "sgi-lerc", "avs-sparc")
	if err != nil {
		t.Fatal(err)
	}
	if mgrSnap.Counters["schooner.client.calls"] < calls {
		t.Errorf("manager snapshot calls = %d, want >= %d", mgrSnap.Counters["schooner.client.calls"], calls)
	}
	h, ok := mgrSnap.Hists["schooner.client.call"]
	if !ok || h.Count != calls {
		t.Errorf("manager snapshot latency histogram = %+v, want count %d", h, calls)
	}

	// The Server answers KMetrics on its own port; in-process it shares
	// the global set, so merging models the cluster-wide roll-up.
	srvSnap, err := QueryMetrics(d.tr, "sgi-lerc", "rs6000:"+ServerPort)
	if err != nil {
		t.Fatal(err)
	}
	merged := trace.MetricsSnapshot{}
	merged.Merge(mgrSnap)
	merged.Merge(srvSnap)
	want := mgrSnap.Counters["schooner.proc.calls"] + srvSnap.Counters["schooner.proc.calls"]
	if got := merged.Counters["schooner.proc.calls"]; got != want {
		t.Errorf("merged proc calls = %d, want %d", got, want)
	}
	if mh := merged.Hists["schooner.client.call"]; mh.Count != 2*calls {
		t.Errorf("merged histogram count = %d, want %d", mh.Count, 2*calls)
	}
}

// TestQueryFlightRoundTrip fetches the flight recorder over the wire
// and checks the dump carries the call events the run just recorded.
func TestQueryFlightRoundTrip(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	oldRec := flight.Swap(flight.NewRecorder(256))
	defer flight.Swap(oldRec)

	ln, err := d.client("sgi-lerc").ContactSchx("flight-module")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "rs6000"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	if _, err := ln.Call("add", uts.DoubleVal(2), uts.DoubleVal(3)); err != nil {
		t.Fatal(err)
	}

	dump, err := QueryFlight(d.tr, "sgi-lerc", "avs-sparc")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flight recorder:", "call-attempt", "line-register", "spawn"} {
		if !strings.Contains(dump, want) {
			t.Errorf("flight dump missing %q:\n%s", want, dump)
		}
	}
}

// TestQueryProfileRoundTrip drives traced calls through a deployment
// and fetches the critical-path attribution over the wire: the
// KProfile reply must decode into a profile whose span DAG covers the
// calls just made, with a nonzero network share (the calls crossed
// the simulated wire).
func TestQueryProfileRoundTrip(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	rec := trace.NewRecorder()
	trace.SetRecorder(rec)
	defer trace.SetRecorder(nil)

	ln, err := d.client("sgi-lerc").ContactSchx("profile-module")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "rs6000"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	for i := 0; i < 3; i++ {
		if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	p, err := QueryProfile(d.tr, "sgi-lerc", "avs-sparc")
	if err != nil {
		t.Fatal(err)
	}
	if p.Spans == 0 || len(p.Phases) == 0 {
		t.Fatalf("profile empty: %+v", p)
	}
	if p.Total.Buckets[critpath.Network] == 0 {
		t.Errorf("no network time attributed: %s", p.Format())
	}
	var sum time.Duration
	for _, v := range p.Total.Buckets {
		sum += v
	}
	if sum != p.Total.CriticalPath {
		t.Errorf("bucket sum %s != critical path %s", sum, p.Total.CriticalPath)
	}

	// With tracing off the reply is still well-formed, just empty.
	trace.SetRecorder(nil)
	p, err = QueryProfile(d.tr, "sgi-lerc", "avs-sparc")
	if err != nil {
		t.Fatal(err)
	}
	if p.Spans != 0 {
		t.Errorf("profile with tracing off has %d spans", p.Spans)
	}
}

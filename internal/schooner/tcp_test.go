package schooner

import (
	"testing"

	"npss/internal/machine"
	"npss/internal/uts"
)

// TestTCPTransportEndToEnd runs the full Manager/Server/client stack
// over real TCP sockets on the loopback interface — the deployment
// shape the cmd/schooner-* daemons use.
func TestTCPTransportEndToEnd(t *testing.T) {
	tr := NewTCPTransport(map[string]*machine.Arch{
		"workstation": machine.SPARC,
		"cray":        machine.CrayYMP,
	})
	if got := tr.Hosts(); len(got) != 2 || got[0] != "cray" {
		t.Errorf("Hosts = %v", got)
	}
	reg := NewRegistry()
	reg.MustRegister(adderProgram("/npss/adder"))

	mgr, err := StartManager(tr, "workstation")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	srv, err := StartServer(tr, "cray", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	c := &Client{Transport: tr, Host: "workstation", ManagerHost: "workstation"}
	ln, err := c.ContactSchx("tcp-module")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.IQuit()
	if err := ln.StartRemote("/npss/adder", "cray"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	out, err := ln.Call("add", uts.DoubleVal(40), uts.DoubleVal(2))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].F != 42 {
		t.Errorf("add over TCP = %v", out[0].F)
	}
}

func TestTCPTransportErrors(t *testing.T) {
	tr := NewTCPTransport(map[string]*machine.Arch{"h": machine.SPARC})
	if _, err := tr.Listen("ghost", ""); err == nil {
		t.Error("listen on unknown host succeeded")
	}
	if _, err := tr.Dial("h", "h:nothing"); err == nil {
		t.Error("dial to unregistered name succeeded")
	}
	if _, err := tr.HostArch("ghost"); err == nil {
		t.Error("arch of unknown host resolved")
	}
	a, err := tr.HostArch("h")
	if err != nil || a != machine.SPARC {
		t.Errorf("HostArch = %v, %v", a, err)
	}
	l, err := tr.Listen("h", "p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("h", "p"); err == nil {
		t.Error("duplicate logical port accepted")
	}
	l.Close()
	if _, err := tr.Listen("h", "p"); err != nil {
		t.Errorf("relisten after close: %v", err)
	}
	tr.AddHost("h2", machine.SGI)
	if _, err := tr.HostArch("h2"); err != nil {
		t.Errorf("AddHost not effective: %v", err)
	}
}

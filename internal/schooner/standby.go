package schooner

// The warm-standby Manager: a second machine tails the leader's
// control-plane journal over the wire (KJournalTail), mirroring every
// record into its own write-ahead log, while heartbeating the leader.
// When the leader misses enough consecutive heartbeats the standby
// promotes itself: it replays its mirrored journal exactly as
// `schooner-manager -recover` would, re-adopts the procedure processes
// that survived the leader, and starts serving on its own host.
// Clients find the promoted Manager through their rebind/retry path
// (Client.Managers lists the standby hosts to try).

import (
	"encoding/binary"
	"sync"
	"time"

	"npss/internal/flight"
	"npss/internal/logx"
	"npss/internal/trace"
	"npss/internal/wal"
	"npss/internal/wire"
)

// StandbyPolicy configures a warm standby: the leader heartbeat
// cadence, how many consecutive misses declare the leader dead, and
// what health/checkpoint policies the promoted Manager runs with.
type StandbyPolicy struct {
	// HeartbeatInterval between leader probes (default 50ms).
	HeartbeatInterval time.Duration
	// Threshold is the number of consecutive probe failures that
	// trigger takeover (default 3).
	Threshold int
	// PingTimeout bounds one probe's round trip (default 1s).
	PingTimeout time.Duration
	// Health is the health policy the promoted Manager starts with; the
	// zero value applies the HealthPolicy defaults.
	Health HealthPolicy
	// CheckpointInterval is the promoted Manager's checkpoint cadence;
	// zero disables checkpointing after takeover.
	CheckpointInterval time.Duration
}

func (p StandbyPolicy) withDefaults() StandbyPolicy {
	if p.HeartbeatInterval == 0 {
		p.HeartbeatInterval = 50 * time.Millisecond
	}
	if p.Threshold <= 0 {
		p.Threshold = 3
	}
	if p.PingTimeout == 0 {
		p.PingTimeout = time.Second
	}
	return p
}

// Standby is a warm-standby Manager: journal mirror plus leader
// heartbeat plus takeover. The promoted Manager (once TookOver) is
// owned by the caller; Stop halts the standby's own goroutines only.
type Standby struct {
	transport Transport
	host      string
	leader    string
	log       *wal.Log
	pol       StandbyPolicy

	stop     chan struct{}
	hbDone   chan struct{}
	tailDone chan struct{}

	mu       sync.Mutex
	tailConn wire.Conn
	stopped  bool
	promoted bool
	mgr      *Manager
}

// StartStandby launches a warm standby on host, mirroring the journal
// of the Manager on leaderHost into log. Both loops run on the package
// clock, so DST drives the standby in virtual time.
func StartStandby(t Transport, host, leaderHost string, log *wal.Log, pol StandbyPolicy) *Standby {
	s := &Standby{
		transport: t,
		host:      host,
		leader:    leaderHost,
		log:       log,
		pol:       pol.withDefaults(),
		stop:      make(chan struct{}),
		hbDone:    make(chan struct{}),
		tailDone:  make(chan struct{}),
	}
	go s.tailLoop()
	go s.heartbeatLoop()
	return s
}

// Manager returns the promoted Manager, or nil before takeover.
func (s *Standby) Manager() *Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr
}

// TookOver reports whether the standby has promoted itself.
func (s *Standby) TookOver() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Stop halts the standby's tail and heartbeat loops. A Manager already
// promoted keeps running; stop it through Manager().Stop().
func (s *Standby) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	tc := s.tailConn
	s.mu.Unlock()
	close(s.stop)
	if tc != nil {
		tc.Close()
	}
	<-s.hbDone
	<-s.tailDone
}

func (s *Standby) halted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped || s.promoted
}

func (s *Standby) setTailConn(conn wire.Conn) {
	s.mu.Lock()
	s.tailConn = conn
	s.mu.Unlock()
}

// tailLoop keeps one KJournalTail subscription open against the
// leader, reconnecting (and re-deduplicating the snapshot by sequence
// number) whenever the connection drops.
func (s *Standby) tailLoop() {
	defer close(s.tailDone)
	for {
		if s.halted() {
			return
		}
		conn, err := s.transport.Dial(s.host, s.leader+":"+ManagerPort)
		if err == nil {
			err = conn.Send(&wire.Message{Kind: wire.KJournalTail})
		}
		if err == nil {
			s.setTailConn(conn)
			s.drainTail(conn)
			s.setTailConn(nil)
		}
		if conn != nil {
			conn.Close()
		}
		select {
		case <-s.stop:
			return
		default:
		}
		clk().Sleep(s.pol.HeartbeatInterval)
	}
}

// drainTail mirrors journal entries until the connection fails.
// Entries at or below the local log's last sequence are duplicates
// from a snapshot re-replay and are skipped; the remainder arrive in
// order, so the local log's numbering stays aligned with the leader's.
func (s *Standby) drainTail(conn wire.Conn) {
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		if m.Kind != wire.KJournalEntry || len(m.Data) < 8 {
			continue
		}
		seq := binary.BigEndian.Uint64(m.Data)
		if seq <= s.log.LastSeq() {
			continue
		}
		if _, err := s.log.Append(m.Data[8:]); err != nil {
			return
		}
		trace.Count("schooner.standby.journal_records")
	}
}

// heartbeatLoop probes the leader Manager and promotes the standby
// after Threshold consecutive misses.
func (s *Standby) heartbeatLoop() {
	defer close(s.hbDone)
	ticker := clk().NewTicker(s.pol.HeartbeatInterval)
	defer ticker.Stop()
	fails := 0
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			trace.Count("schooner.standby.heartbeats")
			if s.pingLeader() {
				fails = 0
				continue
			}
			fails++
			if fails >= s.pol.Threshold {
				s.takeover()
				return
			}
		}
	}
}

// pingLeader probes the leader's Manager port with a bounded KPing.
func (s *Standby) pingLeader() bool {
	conn, err := s.transport.Dial(s.host, s.leader+":"+ManagerPort)
	if err != nil {
		return false
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{Kind: wire.KPing}); err != nil {
		return false
	}
	resp, err := recvTimeout(conn, s.pol.PingTimeout)
	return err == nil && resp.Kind == wire.KPong
}

// takeover promotes the standby: the tail is severed, the mirrored
// journal is replayed, surviving processes are re-adopted, and the new
// Manager starts serving with health monitoring and checkpointing.
func (s *Standby) takeover() {
	s.mu.Lock()
	if s.stopped || s.promoted {
		s.mu.Unlock()
		return
	}
	s.promoted = true
	tc := s.tailConn
	s.mu.Unlock()
	if tc != nil {
		tc.Close()
	}
	// Wait for the tailer so the promoted Manager is the log's only
	// writer.
	<-s.tailDone
	trace.Count("schooner.manager.standby_takeovers")
	flight.Record(flight.Event{Kind: flight.KindTakeover, Component: "standby",
		Host: s.host, Name: s.leader})
	logx.For("standby", s.host).Warn("leader manager dead; taking over",
		"leader", s.leader, "journalSeq", s.log.LastSeq())
	mgr, err := StartManagerConfig(s.transport, s.host, ManagerConfig{
		Journal: s.log, Recover: true, CheckpointInterval: s.pol.CheckpointInterval,
	})
	if err != nil {
		logx.For("standby", s.host).Error("takeover failed", "err", err)
		return
	}
	mgr.StartHealth(s.pol.Health)
	s.mu.Lock()
	s.mgr = mgr
	s.mu.Unlock()
}

package schooner

import (
	"sync"
	"testing"
	"time"

	"npss/internal/uts"
)

// settleConns polls the simulated network until the open-endpoint
// count stops changing and returns the settled value. Server-side
// endpoints close asynchronously (their serve goroutines notice the
// peer's close on the next receive), so an instantaneous reading right
// after teardown can still see them.
func settleConns(t *testing.T, d *deployment, want int, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	n := d.net.OpenConns()
	for n != want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		n = d.net.OpenConns()
	}
	return n
}

// TestNoConnLeakAfterQuit churns a line with 64-way concurrent call
// traffic — pipelined calls, leased calls, and batches all at once —
// then quits the line and closes the client, and proves via the
// netsim endpoint accounting that every connection the churn opened is
// closed again: the pipelined conn, the leased pool, the batch server
// conns, and the manager conn.
func TestNoConnLeakAfterQuit(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))

	// Baseline: whatever standing infrastructure connections the
	// Manager and Servers keep among themselves.
	base := settleConns(t, d, 0, 500*time.Millisecond)

	c := &Client{Transport: d.tr, Host: "avs-sparc", ManagerHost: d.mgrHost}
	ln, err := c.ContactSchx("churn")
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))

	const goroutines = 64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				var err error
				switch {
				case g%8 == 0:
					// A slice of the churn goes through host batches so
					// the client's shared server conns participate too.
					pends := c.GoBatchHosts([]CrossCall{
						{Line: ln, Name: "add", Args: []uts.Value{uts.DoubleVal(1), uts.DoubleVal(2)}},
						{Line: ln, Name: "add", Args: []uts.Value{uts.DoubleVal(3), uts.DoubleVal(4)}},
					})
					for _, p := range pends {
						if _, werr := p.Wait(); werr != nil {
							err = werr
						}
					}
				case g%8 == 1:
					pends := ln.GoBatch([]BatchCall{
						{Name: "add", Args: []uts.Value{uts.DoubleVal(1), uts.DoubleVal(2)}},
						{Name: "add", Args: []uts.Value{uts.DoubleVal(3), uts.DoubleVal(4)}},
					})
					for _, p := range pends {
						if _, werr := p.Wait(); werr != nil {
							err = werr
						}
					}
				default:
					_, err = ln.Call("add", uts.DoubleVal(float64(g)), uts.DoubleVal(float64(i)))
				}
				if err != nil {
					t.Errorf("churn goroutine %d iter %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if err := ln.IQuit(); err != nil {
		t.Fatalf("IQuit: %v", err)
	}
	c.Close()

	if got := settleConns(t, d, base, 2*time.Second); got != base {
		t.Errorf("%d connection endpoints still open after quit (baseline %d)", got, base)
	}
}

// TestLeasedPoolDrainedOnQuit runs the same leak check with
// pipelining disabled, so the leased idle pool — capped but nonempty
// after a burst — is what must be drained by the quit.
func TestLeasedPoolDrainedOnQuit(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	base := settleConns(t, d, 0, 500*time.Millisecond)

	c := &Client{Transport: d.tr, Host: "avs-sparc", ManagerHost: d.mgrHost}
	ln, err := c.ContactSchx("churn")
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.StartRemote("/npss/adder", "sgi-lerc"); err != nil {
		t.Fatal(err)
	}
	ln.Import(uts.MustParseProc(`import add prog("a" val double, "b" val double, "sum" res double)`))
	ln.SetCallPolicy(CallPolicy{NoPipeline: true})

	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := ln.Call("add", uts.DoubleVal(float64(g)), uts.DoubleVal(1)); err != nil {
				t.Errorf("leased call %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()

	// The burst must have left at most the cap in the pool.
	ln.mu.Lock()
	b := ln.bindings["add"]
	ln.mu.Unlock()
	if b != nil {
		b.mu.Lock()
		idle := len(b.idle)
		b.mu.Unlock()
		if idle > maxIdleConns {
			t.Errorf("idle pool %d exceeds cap %d", idle, maxIdleConns)
		}
	}

	if err := ln.IQuit(); err != nil {
		t.Fatalf("IQuit: %v", err)
	}
	c.Close()
	if got := settleConns(t, d, base, 2*time.Second); got != base {
		t.Errorf("%d connection endpoints still open after quit (baseline %d)", got, base)
	}
}

package schooner

import (
	"sync/atomic"

	"npss/internal/vclock"
)

// clockBox wraps the interface value so it fits atomic.Pointer.
type clockBox struct{ c vclock.Clock }

// clockPtr is the package clock every timed operation reads: retry
// backoff, per-attempt call deadlines, Manager RPC deadlines, and the
// health prober's sweep ticker. It defaults to the wall clock; the
// deterministic simulation harness swaps in a vclock.Virtual so the
// whole runtime keeps time on the simulation's clock.
var clockPtr atomic.Pointer[clockBox]

func init() { clockPtr.Store(&clockBox{c: vclock.Real()}) }

// clk reads the package clock.
func clk() vclock.Clock { return clockPtr.Load().c }

// DefaultVirtualRetrySeed seeds the retry-jitter RNG when a virtual
// clock is installed without an explicit SetRetrySeed, so virtual-time
// runs are deterministic by default rather than inheriting the
// wall-clock seed chosen at process start.
const DefaultVirtualRetrySeed = 1993

// SwapClock installs c as the package clock and returns the previous
// one; nil restores the wall clock. Installing a virtual clock also
// re-seeds the retry-jitter RNG deterministically (see
// DefaultVirtualRetrySeed) — callers wanting a specific jitter
// sequence call SetRetrySeed afterwards. Swap the clock only while no
// calls are in flight.
func SwapClock(c vclock.Clock) vclock.Clock {
	if c == nil {
		c = vclock.Real()
	}
	prev := clockPtr.Swap(&clockBox{c: c})
	if _, virtual := c.(*vclock.Virtual); virtual {
		SetRetrySeed(DefaultVirtualRetrySeed)
	}
	return prev.c
}

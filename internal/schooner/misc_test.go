package schooner

import (
	"strings"
	"testing"

	"npss/internal/uts"
	"npss/internal/wire"
)

func TestAccessorsAndListing(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	if d.mgr.Host() != "avs-sparc" {
		t.Errorf("Manager.Host = %q", d.mgr.Host())
	}
	if d.mgr.Addr() != "avs-sparc:"+ManagerPort {
		t.Errorf("Manager.Addr = %q", d.mgr.Addr())
	}
	srv := d.servers["sgi-lerc"]
	if srv.Host() != "sgi-lerc" || srv.Addr() != "sgi-lerc:"+ServerPort {
		t.Errorf("Server accessors: %q, %q", srv.Host(), srv.Addr())
	}
}

func TestLanguageString(t *testing.T) {
	if LangFortran.String() != "fortran" || LangC.String() != "c" {
		t.Error("language names wrong")
	}
	if !strings.HasPrefix(Language(9).String(), "Language(") {
		t.Error("unknown language rendering")
	}
}

func TestRegistryPathsAndDuplicates(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(adderProgram("/a"))
	reg.MustRegister(adderProgram("/b"))
	if got := reg.Paths(); len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Errorf("Paths = %v", got)
	}
	if err := reg.Register(adderProgram("/a")); err == nil {
		t.Error("duplicate path accepted")
	}
	if err := reg.Register(&Program{}); err == nil {
		t.Error("empty program accepted")
	}
	if err := reg.Register(nil); err == nil {
		t.Error("nil program accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRegister did not panic on duplicate")
			}
		}()
		reg.MustRegister(adderProgram("/a"))
	}()
	if _, err := reg.Lookup("/missing"); err == nil {
		t.Error("missing path resolved")
	}
}

func TestNewInstanceValidation(t *testing.T) {
	good := &BoundProc{
		Spec: uts.MustParseProc(`export p prog("x" val double)`),
		Fn:   func(in []uts.Value) ([]uts.Value, error) { return nil, nil },
	}
	if _, err := NewInstance(); err == nil {
		t.Error("empty instance accepted")
	}
	if _, err := NewInstance(&BoundProc{Spec: good.Spec}); err == nil {
		t.Error("missing implementation accepted")
	}
	imp := &BoundProc{
		Spec: uts.MustParseProc(`import p prog("x" val double)`),
		Fn:   good.Fn,
	}
	if _, err := NewInstance(imp); err == nil {
		t.Error("import spec accepted as export")
	}
	if _, err := NewInstance(good, good); err == nil {
		t.Error("duplicate names accepted")
	}
	// State accessors must come in pairs.
	half := &BoundProc{
		Spec:     uts.MustParseProc(`export q prog("x" val double)`),
		Fn:       good.Fn,
		GetState: func() ([]uts.Value, error) { return nil, nil },
	}
	if _, err := NewInstance(half); err == nil {
		t.Error("half a state accessor pair accepted")
	}
	// A state clause requires accessors.
	stateful := &BoundProc{
		Spec: uts.MustParseProc(`export r prog("x" val double) state("n" integer)`),
		Fn:   good.Fn,
	}
	if _, err := NewInstance(stateful); err == nil {
		t.Error("state clause without accessors accepted")
	}
}

func TestInstanceSpecFileAndFind(t *testing.T) {
	inst, err := adderProgram("/x").Build()
	if err != nil {
		t.Fatal(err)
	}
	f := inst.SpecFile()
	if len(f.Exports()) != 2 {
		t.Errorf("SpecFile exports = %d", len(f.Exports()))
	}
	if !strings.Contains(f.String(), "export add prog(") {
		t.Errorf("SpecFile text:\n%s", f.String())
	}
	if inst.Find("add", LangC) == nil {
		t.Error("exact find failed")
	}
	if inst.Find("ADD", LangC) != nil {
		t.Error("C find is case-insensitive")
	}
	if inst.Find("ADD", LangFortran) == nil {
		t.Error("Fortran find is case-sensitive")
	}
}

func TestImportFileAndFlushCache(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(adderProgram("/npss/adder"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	ln.StartRemote("/npss/adder", "sgi-lerc")
	specs := uts.MustParse(`
        import add prog("a" val double, "b" val double, "sum" res double)
        import scale prog("xs" var array[3] of double, "k" val double)
        export ignored prog("x" val double)`)
	if err := ln.ImportFile(specs); err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Call("add", uts.DoubleVal(1), uts.DoubleVal(2)); err != nil {
		t.Fatal(err)
	}
	// FlushCache forces a fresh Manager lookup; the call still works.
	ln.FlushCache()
	out, err := ln.Call("add", uts.DoubleVal(2), uts.DoubleVal(3))
	if err != nil || out[0].F != 5 {
		t.Fatalf("post-flush call = %v, %v", out, err)
	}
	// Re-importing the same file collides.
	if err := ln.ImportFile(specs); err == nil {
		t.Error("duplicate ImportFile accepted")
	}
	if err := ln.Import(nil); err == nil {
		t.Error("nil import accepted")
	}
}

func TestProgramLanguageDefaultNaming(t *testing.T) {
	// Language zero value is Fortran, matching the engine procedure
	// files; make sure that is deliberate and stable.
	var l Language
	if l != LangFortran {
		t.Error("zero Language is not Fortran")
	}
}

func TestStatePutErrors(t *testing.T) {
	d := newDeployment(t, "avs-sparc", ieeeHosts())
	d.reg.MustRegister(counterProgram("/npss/counter"))
	ln, _ := d.client("avs-sparc").ContactSchx("m")
	defer ln.IQuit()
	ln.StartRemote("/npss/counter", "sgi-lerc")
	ln.Import(uts.MustParseProc(`import next prog("n" res integer)`))
	if _, err := ln.Call("next"); err != nil {
		t.Fatal(err)
	}
	// Garbage state payload through a direct connection.
	b := ln.bindings["next"]
	conn, err := d.tr.Dial("avs-sparc", b.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Send(&wire.Message{Kind: wire.KStatePut, Name: "next", Data: []byte{1, 2, 3}})
	resp, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("garbage state accepted")
	}
}

// Package flight is the always-on flight recorder: a bounded,
// lock-cheap ring of structured events that every component — client,
// Manager, Server, procedure process, and the simulated network —
// appends to even when tracing is disabled. When something dies or an
// invariant trips, the ring holds the last N things the process
// actually did, each stamped with the trace/span IDs that were in
// flight, so a post-mortem can be correlated with the span timeline
// and the structured log.
//
// The recording hot path is one short critical section copying a
// fixed-size Event struct into a preallocated ring slot: no
// allocation, no formatting, no I/O. Formatting happens only at dump
// time.
package flight

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a flight-recorder event. The set mirrors the
// runtime's interesting state transitions rather than its log lines:
// these are the events a post-mortem needs to reconstruct what a
// component was doing when it died.
type Kind uint8

const (
	KindInvalid      Kind = iota
	KindCallAttempt       // client: one attempt of a Line.Call
	KindCallRetry         // client: attempt failed, will retry
	KindCallFail          // client: call terminally failed
	KindBind              // client: bound a procedure to a process
	KindRebind            // client: invalidated a cached binding
	KindSpawn             // manager/server: process spawned
	KindLineRegister      // manager: line registered
	KindLineQuit          // manager: line quit
	KindMigration         // manager: procedure moved between hosts
	KindHealthDown        // manager: host transitioned to down
	KindHealthUp          // manager: host transitioned back up
	KindFailover          // manager: stateless procs re-homed off a dead host
	KindFaultInject       // netsim: fault model dropped/killed a message
	KindDispatch          // process: procedure invocation dispatched
	KindPanic             // any: panic captured before re-raise
	KindViolation         // dst/chaos: invariant violation detected
	KindNote              // anything else worth keeping
	KindCheckpoint        // manager: stateful procedure state journaled
	KindStateRestore      // manager: stateful proc restored from checkpoint
	KindFailoverSkip      // manager: stateful proc NOT failed over (no checkpoint)
	KindReadopt           // manager: surviving process re-adopted after recovery
	KindRecover           // manager: name database rebuilt from the journal
	KindTakeover          // standby: leader declared dead, standby promoted
	KindAttribution       // critpath: a critical-path edge captured with a profile

	kindMax
)

var kindNames = [...]string{
	KindInvalid:      "invalid",
	KindCallAttempt:  "call-attempt",
	KindCallRetry:    "call-retry",
	KindCallFail:     "call-fail",
	KindBind:         "bind",
	KindRebind:       "rebind",
	KindSpawn:        "spawn",
	KindLineRegister: "line-register",
	KindLineQuit:     "line-quit",
	KindMigration:    "migration",
	KindHealthDown:   "health-down",
	KindHealthUp:     "health-up",
	KindFailover:     "failover",
	KindFaultInject:  "fault-inject",
	KindDispatch:     "dispatch",
	KindPanic:        "panic",
	KindViolation:    "violation",
	KindNote:         "note",
	KindCheckpoint:   "checkpoint",
	KindStateRestore: "state-restore",
	KindFailoverSkip: "failover-skip",
	KindReadopt:      "readopt",
	KindRecover:      "recover",
	KindTakeover:     "takeover",
	KindAttribution:  "attribution",
}

func (k Kind) String() string {
	if k < kindMax {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsAttribution reports whether k carries latency-attribution context
// — a critical-path edge recorded alongside a captured profile — so a
// post-mortem reader can filter the "why was this slow" events from
// the what-happened stream.
func (k Kind) IsAttribution() bool { return k == KindAttribution }

// IsTransition reports whether k marks a cluster-shape change — a
// crash, failover, takeover, migration, recovery, or violation —
// rather than per-call traffic. Transition events are the ones a
// run report overlays on its load timeline, and the ones worth
// keeping verbatim when the per-call kinds would flood a capture.
func (k Kind) IsTransition() bool {
	switch k {
	case KindHealthDown, KindHealthUp, KindFailover, KindFailoverSkip,
		KindTakeover, KindViolation, KindMigration, KindStateRestore,
		KindRecover:
		return true
	}
	return false
}

// Event is one flight-recorder entry. All fields are plain values;
// callers pass strings they already hold (procedure names, host
// names) rather than formatting new ones, so recording never
// allocates. Seq and Time are stamped by Record.
type Event struct {
	Seq       uint64
	Time      time.Time
	Kind      Kind
	Component string // "client", "manager", "server", "process", "netsim", ...
	Host      string
	Line      uint32
	Trace     uint64 // trace ID when a span was active, else 0
	Span      uint64
	Name      string // procedure / line / host the event concerns
	Detail    string // preexisting string only; no fmt on the hot path
}

// DefaultLimit is the ring capacity of the package-level recorder:
// enough to hold the full recent history of a chaos run without
// growing, small enough that a dump stays readable.
const DefaultLimit = 4096

// Recorder is a bounded ring of Events. Once full it overwrites the
// oldest entry; Dropped reports how many were overwritten.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int    // ring index of the next write
	seq     uint64 // total events ever recorded
	wrapped bool
}

// NewRecorder returns a recorder holding at most limit events.
// limit <= 0 selects DefaultLimit.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Recorder{buf: make([]Event, limit)}
}

// Record appends e to the ring, stamping its sequence number and
// time. The critical section is one struct copy.
func (r *Recorder) Record(e Event) {
	now := clock()
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	e.Time = now
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Events returns the recorded events oldest-first. The slice is a
// copy; the ring keeps recording.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Dropped reports how many events have been overwritten because the
// ring was full — the dump is truncated by exactly this many entries.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return 0
	}
	return r.seq - uint64(len(r.buf))
}

// Reset clears the ring and its counters.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.next, r.seq, r.wrapped = 0, 0, false
	r.mu.Unlock()
}

// Aux dumps are optional extra post-mortem sections appended to every
// Dump — the time-series plane registers the last few metric windows
// ("series tail"), the attribution plane the top critical-path edges
// ("critical path") — so a chaos/DST failure dump shows the minutes
// and the costs before the violation, not just the instant. Sections
// render sorted by name so dumps stay deterministic regardless of
// registration order.
var (
	auxMu    sync.Mutex
	auxDumps = map[string]func() string{}
)

// SetAuxDump registers fn to contribute the named section to future
// dumps; a nil fn unregisters that name. Re-registering a name
// replaces its section.
func SetAuxDump(name string, fn func() string) {
	auxMu.Lock()
	defer auxMu.Unlock()
	if fn == nil {
		delete(auxDumps, name)
		return
	}
	auxDumps[name] = fn
}

// auxSections snapshots the registered sections in name order.
func auxSections() (names []string, fns []func() string) {
	auxMu.Lock()
	defer auxMu.Unlock()
	for n := range auxDumps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fns = append(fns, auxDumps[n])
	}
	return names, fns
}

// Dump writes the ring's events oldest-first as one line each:
//
//	#seq time kind component@host line=N trace=... span=... name detail
//
// A truncation header states how many events were overwritten, so a
// short dump is visibly short rather than silently so. Any section
// registered via SetAuxDump follows the event lines.
func (r *Recorder) Dump(w io.Writer) error {
	events := r.Events()
	dropped := r.Dropped()
	if _, err := fmt.Fprintf(w, "flight recorder: %d events", len(events)); err != nil {
		return err
	}
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, " (%d older events overwritten)", dropped); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for i := range events {
		if _, err := io.WriteString(w, FormatEvent(&events[i])); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	names, fns := auxSections()
	for i, name := range names {
		if _, err := fmt.Fprintf(w, "-- %s --\n", name); err != nil {
			return err
		}
		out := fns[i]()
		if _, err := io.WriteString(w, out); err != nil {
			return err
		}
		if !strings.HasSuffix(out, "\n") {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// DumpString renders Dump into a string.
func (r *Recorder) DumpString() string {
	var b strings.Builder
	r.Dump(&b)
	return b.String()
}

// FormatEvent renders one event as the stable single-line dump form.
func FormatEvent(e *Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %-13s %s", e.Seq, e.Time.Format("15:04:05.000000"), e.Kind, e.Component)
	if e.Host != "" {
		fmt.Fprintf(&b, "@%s", e.Host)
	}
	if e.Line != 0 {
		fmt.Fprintf(&b, " line=%d", e.Line)
	}
	if e.Trace != 0 {
		fmt.Fprintf(&b, " trace=%016x span=%016x", e.Trace, e.Span)
	}
	if e.Name != "" {
		fmt.Fprintf(&b, " %s", e.Name)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// The package-level recorder is always on: every component records
// into it without checking any gate, because the whole point is to
// have history when nobody thought to enable anything.
var defaultRec atomic.Pointer[Recorder]

func init() { defaultRec.Store(NewRecorder(DefaultLimit)) }

// Default returns the package-level recorder.
func Default() *Recorder { return defaultRec.Load() }

// Swap installs r as the package-level recorder and returns the
// previous one; nil installs a fresh default-sized ring. Tests use it
// to isolate their event streams.
func Swap(r *Recorder) *Recorder {
	if r == nil {
		r = NewRecorder(DefaultLimit)
	}
	return defaultRec.Swap(r)
}

// Record appends e to the package-level recorder.
func Record(e Event) { defaultRec.Load().Record(e) }

// Dump writes the package-level recorder's contents to w.
func Dump(w io.Writer) error { return defaultRec.Load().Dump(w) }

// DumpString renders the package-level recorder's contents.
func DumpString() string { return defaultRec.Load().DumpString() }

// DumpOnPanic is deferred at the top of a daemon's serving goroutine:
// when the goroutine panics, the panic value is recorded, the ring is
// dumped to w, and the panic resumes — so a crashed daemon leaves its
// last N events behind.
func DumpOnPanic(w io.Writer) {
	if r := recover(); r != nil {
		Record(Event{Kind: KindPanic, Component: "panic", Detail: fmt.Sprint(r)})
		Dump(w)
		panic(r)
	}
}

// clock is swapped by tests that need deterministic timestamps.
var clock = time.Now

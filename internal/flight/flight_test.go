package flight

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingOrderAndDropped(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(Event{Kind: KindNote, Component: "test", Name: string(rune('a' + i))})
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	// Events 1 and 2 were overwritten; 3..6 remain oldest-first.
	for i, want := range []uint64{3, 4, 5, 6} {
		if ev[i].Seq != want {
			t.Errorf("event %d: seq %d, want %d", i, ev[i].Seq, want)
		}
	}
	if got := r.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
	if got := r.Len(); got != 4 {
		t.Errorf("Len() = %d, want 4", got)
	}
}

func TestNoDropBeforeWrap(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindNote})
	}
	if got := r.Dropped(); got != 0 {
		t.Errorf("Dropped() = %d, want 0", got)
	}
	if got := len(r.Events()); got != 5 {
		t.Errorf("len(Events()) = %d, want 5", got)
	}
}

func TestDumpFormat(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{
		Kind: KindCallAttempt, Component: "client", Host: "sparc1",
		Line: 7, Trace: 0xdeadbeef, Span: 0x1234, Name: "add", Detail: "attempt=1",
	})
	r.Record(Event{Kind: KindFailover, Component: "manager", Host: "sun4", Name: "rs6000lerc"})
	out := r.DumpString()
	if !strings.Contains(out, "flight recorder: 2 events") {
		t.Errorf("missing header in dump:\n%s", out)
	}
	if !strings.Contains(out, "call-attempt") || !strings.Contains(out, "client@sparc1") {
		t.Errorf("missing call-attempt line in dump:\n%s", out)
	}
	if !strings.Contains(out, "trace=00000000deadbeef span=0000000000001234") {
		t.Errorf("missing trace correlation IDs in dump:\n%s", out)
	}
	if !strings.Contains(out, "line=7") || !strings.Contains(out, "attempt=1") {
		t.Errorf("missing line/detail in dump:\n%s", out)
	}
	if !strings.Contains(out, "failover") {
		t.Errorf("missing failover line in dump:\n%s", out)
	}
	if strings.Contains(out, "overwritten") {
		t.Errorf("unexpected truncation note in non-wrapped dump:\n%s", out)
	}
}

func TestDumpTruncationNote(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindNote, Component: "test"})
	}
	out := r.DumpString()
	if !strings.Contains(out, "(3 older events overwritten)") {
		t.Errorf("expected truncation note in dump:\n%s", out)
	}
}

func TestSwapAndDefault(t *testing.T) {
	old := Swap(NewRecorder(16))
	defer Swap(old)
	Record(Event{Kind: KindNote, Component: "test", Name: "hello"})
	if got := Default().Len(); got != 1 {
		t.Fatalf("default recorder has %d events, want 1", got)
	}
	if !strings.Contains(DumpString(), "hello") {
		t.Errorf("package-level dump missing the event")
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(Event{Kind: KindNote, Component: "test"})
			}
		}()
	}
	wg.Wait()
	if got := r.Dropped(); got != writers*per-64 {
		t.Errorf("Dropped() = %d, want %d", got, writers*per-64)
	}
	ev := r.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d then %d", i, ev[i-1].Seq, ev[i].Seq)
		}
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(1024)
	e := Event{Kind: KindCallAttempt, Component: "client", Host: "h", Name: "p", Detail: "d"}
	allocs := testing.AllocsPerRun(1000, func() { r.Record(e) })
	if allocs != 0 {
		t.Errorf("Record allocates %v times per call, want 0", allocs)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindNote})
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("Reset left Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	r.Record(Event{Kind: KindNote})
	if ev := r.Events(); len(ev) != 1 || ev[0].Seq != 1 {
		t.Fatalf("post-reset events wrong: %+v", ev)
	}
}

func TestKindString(t *testing.T) {
	if KindFailover.String() != "failover" {
		t.Errorf("KindFailover.String() = %q", KindFailover.String())
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range kind string = %q", got)
	}
}

func TestTimestampsMonotonicWithinDump(t *testing.T) {
	r := NewRecorder(8)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	i := 0
	old := clock
	clock = func() time.Time { i++; return base.Add(time.Duration(i) * time.Millisecond) }
	defer func() { clock = old }()
	r.Record(Event{Kind: KindNote})
	r.Record(Event{Kind: KindNote})
	ev := r.Events()
	if !ev[1].Time.After(ev[0].Time) {
		t.Fatalf("timestamps not increasing: %v then %v", ev[0].Time, ev[1].Time)
	}
}

func TestMultiSectionAuxDump(t *testing.T) {
	SetAuxDump("zeta", func() string { return "zeta section" })
	SetAuxDump("alpha", func() string { return "alpha section\n" })
	t.Cleanup(func() {
		SetAuxDump("zeta", nil)
		SetAuxDump("alpha", nil)
	})
	r := NewRecorder(8)
	r.Record(Event{Kind: KindNote, Component: "test"})
	out := r.DumpString()
	ai := strings.Index(out, "-- alpha --\nalpha section")
	zi := strings.Index(out, "-- zeta --\nzeta section")
	if ai < 0 || zi < 0 {
		t.Fatalf("missing aux sections:\n%s", out)
	}
	if ai > zi {
		t.Fatalf("sections not sorted by name:\n%s", out)
	}
	// Unregistering one name must leave the other.
	SetAuxDump("zeta", nil)
	out = r.DumpString()
	if strings.Contains(out, "zeta") || !strings.Contains(out, "alpha section") {
		t.Fatalf("unregister removed the wrong section:\n%s", out)
	}
}

func TestKindAttribution(t *testing.T) {
	if KindAttribution.String() != "attribution" {
		t.Errorf("String = %q", KindAttribution.String())
	}
	if !KindAttribution.IsAttribution() || KindViolation.IsAttribution() {
		t.Error("IsAttribution misclassifies")
	}
	if KindAttribution.IsTransition() {
		t.Error("attribution events must not be treated as cluster transitions")
	}
}
